//! The `elsq-lab` command line: list and run registered experiments.
//!
//! The CLI discovers experiments exclusively through
//! [`elsq_sim::experiments::registry`], so every subcommand works unchanged
//! when a new experiment module registers itself. Parsing and execution are
//! plain functions over argument slices so the unit tests can drive them
//! without a subprocess; the `elsq-lab` binary is a thin wrapper.
//!
//! ```text
//! elsq-lab list
//! elsq-lab run fig7 fig10 --commits 60000 --seed 7 --format json --out results/
//! elsq-lab run --all --quick
//! ```

use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;

use elsq_serve::client::{self, ClientConfig};
use elsq_serve::protocol::Event;
use elsq_serve::{ServeConfig, Server};
use elsq_sim::driver::install_result_cache;
use elsq_sim::experiments::{registry, run_experiments, Experiment};
use elsq_sim::fault::FaultPlan;
use elsq_sim::install_fault_plan;
use elsq_sim::scenario::{run_plan, run_plan_each, sweep_report, Axis, ScenarioSpec, SweepPlan};
use elsq_sim::store::ResultStore;
use elsq_sim::suite::{evaluate, Status, Suite, SuiteOutcome};
use elsq_stats::report::{ExperimentParams, Report};
use elsq_stats::sampling::SamplingSpec;
use elsq_workload::suite::WorkloadClass;
use serde::Serialize;

use crate::bench::{
    baseline_from_value, check_against_baseline, default_out_path, run_bench, BenchParams,
    BENCH_COMMITS, BENCH_COMMITS_QUICK, BENCH_SEED,
};
use crate::diff::{degraded_cells, diff_reports, parse_reports};
use crate::trace::{TraceCmd, TraceDumpArgs, TraceFileArgs};

/// Usage text printed by `elsq-lab help` and on parse errors.
pub const USAGE: &str = "\
elsq-lab — registry-driven experiment runner for the ELSQ reproduction

USAGE:
    elsq-lab list                 list registered experiments
    elsq-lab show ID              print an experiment's parameters and
                                  config grid as JSON
    elsq-lab run [IDS...] [OPTS]  run experiments by id
    elsq-lab sweep [OPTS]         run an ad-hoc or scenario-file config grid
    elsq-lab bench [OPTS]         measure simulator throughput
    elsq-lab diff A.json B.json [--tol REL]
                                  compare two report files cell-by-cell
    elsq-lab test DIR|FILE... [OPTS]
                                  run suite files of paper-trend assertions
                                  (format: docs/SUITES.md)
    elsq-lab trace dump [WORKLOADS...] --out DIR [OPTS]
                                  record workloads to .etrc trace files
    elsq-lab trace info FILE...   print trace provenance and block stats
    elsq-lab trace verify FILE... fully decode traces, checking every CRC
    elsq-lab serve --store DIR [OPTS]
                                  run the simulation service daemon
    elsq-lab submit [GRID OPTS]   submit a sweep to a running daemon and
                                  stream its progress
    elsq-lab jobs [--connect A]   list a running daemon's job table
    elsq-lab shutdown [--connect A]
                                  stop a daemon gracefully
    elsq-lab help                 show this help

RUN OPTIONS:
    --all              run every registered experiment
    --quick            use the quick parameter preset (5k commits)
    --commits N        override committed instructions per workload
    --seed N           override the workload generator seed
    --format FORMAT    text | csv | json (default: text)
    --out DIR          write one file per experiment into DIR
    --jobs N           cap worker threads per fan-out level (sets
                       ELSQ_THREADS; nested suite fan-outs budget
                       separately, so total live threads can exceed N —
                       --jobs 1 is exactly sequential)
    --sequential       run experiments one after another (suites still
                       parallel); with --jobs 1, fully sequential
    --trace DIR        replay recorded .etrc traces from DIR (written by
                       `trace dump`) instead of running the generators;
                       the dump's seed must match and its per-workload
                       instruction count must cover the commit budget
    --cache DIR        consult an on-disk result cache before simulating
                       and write fresh points back (see docs/SCENARIOS.md)
    --resume           required to reuse a --cache directory that already
                       holds cached points
    --sample P:W[:U]   SMARTS-style systematic sampling: per PERIOD
                       instructions, fast-forward functionally, warm for U
                       (default 0), then simulate a W-instruction detailed
                       window; mean-IPC cells gain a 95% confidence
                       interval (see docs/SAMPLING.md); sampled runs cache
                       under distinct keys from full runs

SWEEP OPTIONS:
    --scenario FILE    run the grid described by a scenario JSON file
                       (format: docs/SCENARIOS.md); conflicts with
                       --axis/--base/--classes/--name
    --axis NAME=V,V    add a swept axis (repeatable, applied in order;
                       `elsq-lab sweep --axis rob=64,128,256 --axis
                       lsq=central,elsq`)
    --base NAME        named base config for ad-hoc grids (default:
                       fmc-hash-sqm; ooo64, fmc-line-sqm, ... — any name
                       from docs/SCENARIOS.md)
    --classes SEL      fp | int | both (default: both)
    --name NAME        scenario name for ad-hoc grids (default: adhoc)
    --quick            quick preset (5k commits) instead of the sweep
                       preset (30k)
    --no-batch         run grid points one at a time instead of batching
                       same-class points over a shared captured stream
                       (results and cache keys are identical either way)
    --fault-plan FILE  install a fault-injection plan for the run (see
                       docs/ROBUSTNESS.md; overrides the FAULT_PLAN env
                       var); a sweep whose points fail completes with a
                       degraded report and exit code 3
    --commits/--seed, --cache DIR/--resume, --format, --out DIR, --jobs,
    --trace DIR, --sample P:W[:U]
                       as for `run` (--out writes DIR/sweep-<name>.<ext>)

SERVE OPTIONS:
    --store DIR        shared result-store directory (required); holds the
                       cached points and the `jobs/` journal, and is
                       protected by an advisory writer lock
    --addr A           listen address (default: 127.0.0.1:46170); port 0
                       picks a free port, printed on startup
    --resume           required to reopen a store that already holds
                       cached points — i.e. on every daemon restart
    --jobs N           worker-thread cap per fan-out level, as for `run`
    --watchdog SECS    per-job progress watchdog (off by default): a job
                       that completes no point for SECS seconds is marked
                       Failed and its worker abandoned
    --fault-plan FILE  install a fault-injection plan for the daemon's
                       lifetime (docs/ROBUSTNESS.md; overrides FAULT_PLAN)

SUBMIT OPTIONS:
    --connect A        daemon address (default: 127.0.0.1:46170)
    --job ID           idempotency key (1-64 chars of [A-Za-z0-9_-]):
                       resubmitting the same id with the same spec attaches
                       to / replays that job; resubmitting a *degraded* job
                       re-runs only its failed/missing points; a different
                       spec under a known id is an error. Without --job the
                       server assigns an id.
    --timeout SECS     connect/first-response timeout (default: 30; 0
                       disables); expiry exits with code 2. A job whose
                       points failed completes with a degraded report and
                       exit code 3.
    --scenario/--axis/--base/--classes/--name/--quick/--commits/--seed,
    --sample P:W[:U], --format, --out DIR
                       as for `sweep` (--out writes DIR/sweep-<name>.<ext>,
                       byte-identical to the offline sweep's file); the
                       cache flags belong to the server, not to submit

JOBS / SHUTDOWN OPTIONS:
    --connect A        daemon address (default: 127.0.0.1:46170)
    --timeout SECS     connect/response timeout (default: 30; 0 disables);
                       expiry exits with code 2
    --now              (shutdown only) cancel the running job at its next
                       class-group boundary instead of draining it; the
                       job is re-queued and resumes on the next start

TRACE DUMP OPTIONS:
    WORKLOADS          `both` (default), `fp`, `int`, or workload names
    --quick            record the quick preset (5k insts per workload)
    --commits N        instructions to record per workload (default 60k)
    --seed N           generator seed to record at (default 7)
    --out DIR          directory to write `.etrc` files into (required)
    --checkpoint-every N
                       write a header-v2 trace with an architectural
                       checkpoint directory every N instructions, enabling
                       O(1) fast-forward seeks in sampled replays

BENCH OPTIONS:
    --quick            5k commits per workload instead of 20k
    --commits N        override committed instructions per workload
    --seed N           override the workload generator seed
    --label NAME       report label; also writes BENCH_<NAME>.json
    --out FILE         write the JSON report to FILE (overrides --label path)
    --format FORMAT    text | json (default: text)
    --check FILE       compare against a baseline bench JSON (flat report
                       or a {before,after} trajectory file); exits non-zero
                       on regression
    --max-regress PCT  allowed per-case throughput drop for --check, in
                       percent (default: 30)
    --trace DIR        bench over recorded .etrc traces instead of the
                       generators; stream capture is outside the timed
                       window either way, so rates stay comparable
    --sample P:W[:U]   run every roster case sampled (as for `run`); the
                       rate counts covered instructions (skipped + warmed
                       + detailed), which is what sampling accelerates

DIFF OPTIONS:
    --tol REL          relative tolerance for numeric cells (default: 0,
                       i.e. exact); text cells always compare exactly

TEST OPTIONS:
    DIR|FILE...        suite JSON files, or directories scanned for *.json
                       (sorted by name; see docs/SUITES.md for the format)
    --cache DIR        consult an on-disk result cache before simulating,
                       exactly as for `run`/`sweep`; a repeated invocation
                       answers every point from disk (100% cache hits)
    --resume           required to reuse a --cache directory that already
                       holds cached points
    --jobs N           worker-thread cap per fan-out level, as for `run`
    --format FORMAT    text | json (default: text); json prints the
                       machine-readable outcome report to stdout
    --out FILE         also write the JSON outcome report to FILE (for CI
                       artifacts), independent of --format
                       exit codes: 0 all assertions pass, 1 assertion
                       failure(s), 2 usage error, 3 degraded report(s)

Experiment ids map to paper artifacts; see docs/EXPERIMENTS.md.";

/// Output format of `elsq-lab run`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputFormat {
    /// Aligned plain-text tables.
    Text,
    /// RFC-4180 CSV, one `# title` comment per table.
    Csv,
    /// A JSON array of structured reports.
    Json,
}

impl OutputFormat {
    fn parse(s: &str) -> Result<Self, CliError> {
        match s {
            "text" => Ok(Self::Text),
            "csv" => Ok(Self::Csv),
            "json" => Ok(Self::Json),
            other => Err(CliError::usage(format!(
                "unknown format `{other}` (expected text, csv or json)"
            ))),
        }
    }

    fn extension(self) -> &'static str {
        match self {
            Self::Text => "txt",
            Self::Csv => "csv",
            Self::Json => "json",
        }
    }
}

/// Parsed `elsq-lab run` arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunArgs {
    /// Experiment ids to run (empty only with `--all`).
    pub ids: Vec<String>,
    /// Run every registered experiment.
    pub all: bool,
    /// Use the quick preset instead of each experiment's default.
    pub quick: bool,
    /// Override the commit budget.
    pub commits: Option<u64>,
    /// Override the workload seed.
    pub seed: Option<u64>,
    /// Output format.
    pub format: OutputFormat,
    /// Output directory (one file per experiment) instead of stdout.
    pub out: Option<PathBuf>,
    /// Worker-thread cap (exported as `ELSQ_THREADS`).
    pub jobs: Option<usize>,
    /// Disable the experiment-level fan-out.
    pub sequential: bool,
    /// Replay recorded `.etrc` traces from this directory instead of
    /// running the generators.
    pub trace: Option<PathBuf>,
    /// On-disk result cache to consult/populate.
    pub cache: Option<PathBuf>,
    /// Allow reusing a cache directory that already holds points.
    pub resume: bool,
    /// SMARTS-style sampling specification (`--sample P:W[:U]`).
    pub sample: Option<SamplingSpec>,
}

/// Parsed `elsq-lab sweep` arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepArgs {
    /// Scenario file to run (`--scenario`); conflicts with the ad-hoc
    /// grid flags.
    pub scenario: Option<PathBuf>,
    /// Ad-hoc axes, parsed from `--axis NAME=V1,V2,...` in order.
    pub axes: Vec<Axis>,
    /// Named base configuration for ad-hoc grids.
    pub base: Option<String>,
    /// Workload class selection (`fp`, `int` or `both`).
    pub classes: Option<String>,
    /// Scenario name for ad-hoc grids.
    pub name: Option<String>,
    /// Use the quick preset instead of the sweep preset.
    pub quick: bool,
    /// Override the commit budget.
    pub commits: Option<u64>,
    /// Override the workload seed.
    pub seed: Option<u64>,
    /// On-disk result cache to consult/populate.
    pub cache: Option<PathBuf>,
    /// Allow reusing a cache directory that already holds points.
    pub resume: bool,
    /// Output format.
    pub format: OutputFormat,
    /// Output directory (the report is written as one file) instead of
    /// stdout.
    pub out: Option<PathBuf>,
    /// Worker-thread cap (exported as `ELSQ_THREADS`).
    pub jobs: Option<usize>,
    /// Replay recorded `.etrc` traces from this directory.
    pub trace: Option<PathBuf>,
    /// Run points one at a time instead of batching same-class points over
    /// a shared captured stream.
    pub no_batch: bool,
    /// Fault plan file to install for the run (`--fault-plan`; overrides
    /// the `FAULT_PLAN` environment variable).
    pub fault_plan: Option<PathBuf>,
    /// SMARTS-style sampling specification (`--sample P:W[:U]`).
    pub sample: Option<SamplingSpec>,
}

/// Parsed `elsq-lab bench` arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchArgs {
    /// Use the quick commit budget.
    pub quick: bool,
    /// Override the commit budget.
    pub commits: Option<u64>,
    /// Override the workload seed.
    pub seed: Option<u64>,
    /// Report label; also selects the default `BENCH_<label>.json` path.
    pub label: Option<String>,
    /// Explicit output file for the JSON report.
    pub out: Option<PathBuf>,
    /// Output format (text or json; csv is rejected at parse time).
    pub format: OutputFormat,
    /// Baseline file to compare against.
    pub check: Option<PathBuf>,
    /// Allowed per-case throughput regression for `--check`, as a fraction.
    pub max_regress: f64,
    /// Replay recorded `.etrc` traces from this directory instead of
    /// running the generators (setup stays outside the timed window either
    /// way, so the rates are comparable).
    pub trace: Option<PathBuf>,
    /// SMARTS-style sampling specification (`--sample P:W[:U]`).
    pub sample: Option<SamplingSpec>,
}

/// Parsed `elsq-lab diff` arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffArgs {
    /// First report file.
    pub a: PathBuf,
    /// Second report file.
    pub b: PathBuf,
    /// Relative tolerance for numeric cells.
    pub tol: f64,
}

/// Parsed `elsq-lab test` arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct TestArgs {
    /// Suite files and/or directories to scan for `*.json` suite files.
    pub paths: Vec<PathBuf>,
    /// On-disk result cache to consult/populate.
    pub cache: Option<PathBuf>,
    /// Allow reusing a cache directory that already holds points.
    pub resume: bool,
    /// Worker-thread cap (exported as `ELSQ_THREADS`).
    pub jobs: Option<usize>,
    /// Output format (text or json; csv is rejected at parse time).
    pub format: OutputFormat,
    /// Also write the JSON outcome report to this file.
    pub out: Option<PathBuf>,
}

/// Parsed `elsq-lab serve` arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeArgs {
    /// Listen address (`--addr`; default [`elsq_serve::protocol::DEFAULT_ADDR`]).
    pub addr: String,
    /// The shared result-store directory (required `--store`).
    pub store: PathBuf,
    /// Allow reopening a store that already holds cached points.
    pub resume: bool,
    /// Worker-thread cap (exported as `ELSQ_THREADS`) for the daemon's
    /// lifetime.
    pub jobs: Option<usize>,
    /// Per-job progress watchdog in seconds (`--watchdog`; off by
    /// default): a job that completes no point for this long is marked
    /// Failed and its worker abandoned.
    pub watchdog: Option<u64>,
    /// Fault plan file to install for the daemon's lifetime
    /// (`--fault-plan`; overrides the `FAULT_PLAN` environment variable).
    pub fault_plan: Option<PathBuf>,
}

/// Parsed `elsq-lab submit` arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitArgs {
    /// Daemon address (`--connect`).
    pub connect: String,
    /// Client-chosen job id (`--job`), validated at parse time.
    pub job: Option<String>,
    /// The grid + output flags, exactly as for `sweep` (the cache, jobs
    /// and trace fields stay unset — they belong to the server).
    pub grid: SweepArgs,
    /// Connect/first-response timeout in seconds (`--timeout`; default
    /// 30; 0 disables).
    pub timeout: u64,
}

/// Parsed `elsq-lab jobs` / `elsq-lab shutdown` arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct ConnectArgs {
    /// Daemon address (`--connect`).
    pub connect: String,
    /// Connect/response timeout in seconds (`--timeout`; default 30; 0
    /// disables).
    pub timeout: u64,
    /// `shutdown --now`: cancel the running job at its next class-group
    /// boundary instead of draining it (always false for `jobs`).
    pub now: bool,
}

/// Default `--timeout` for the client verbs, in seconds.
pub const DEFAULT_CLIENT_TIMEOUT_SECS: u64 = 30;

/// The [`ClientConfig`] a `--timeout SECS` value selects (0 = no timeout).
fn client_config(timeout_secs: u64) -> ClientConfig {
    ClientConfig {
        timeout: (timeout_secs > 0).then(|| std::time::Duration::from_secs(timeout_secs)),
        ..ClientConfig::default()
    }
}

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `elsq-lab list`
    List,
    /// `elsq-lab show <id>`
    Show(String),
    /// `elsq-lab run ...`
    Run(RunArgs),
    /// `elsq-lab sweep ...`
    Sweep(SweepArgs),
    /// `elsq-lab bench ...`
    Bench(BenchArgs),
    /// `elsq-lab diff a.json b.json`
    Diff(DiffArgs),
    /// `elsq-lab test suites/ ...`
    Test(TestArgs),
    /// `elsq-lab trace dump|info|verify ...`
    Trace(TraceCmd),
    /// `elsq-lab serve ...`
    Serve(ServeArgs),
    /// `elsq-lab submit ...`
    Submit(SubmitArgs),
    /// `elsq-lab jobs`
    Jobs(ConnectArgs),
    /// `elsq-lab shutdown`
    Shutdown(ConnectArgs),
    /// `elsq-lab help` / `--help`
    Help,
}

/// CLI error: a message plus the process exit code to use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError {
    /// Human-readable description.
    pub message: String,
    /// Process exit code (2 = usage error or timeout, 1 = runtime error).
    pub exit_code: i32,
    /// Whether the binary should print the usage text after the message
    /// (true for argument mistakes; false for timeouts, which share exit
    /// code 2 but are not helped by a usage dump).
    pub show_usage: bool,
}

impl CliError {
    pub(crate) fn usage(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            exit_code: 2,
            show_usage: true,
        }
    }

    pub(crate) fn runtime(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            exit_code: 1,
            show_usage: false,
        }
    }

    pub(crate) fn timeout(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            exit_code: 2,
            show_usage: false,
        }
    }
}

/// Maps a client-helper error: timeouts get the loud exit-2 treatment
/// (without a usage dump), everything else is an ordinary runtime error.
fn client_error(message: String) -> CliError {
    if client::is_timeout(&message) {
        CliError::timeout(message)
    } else {
        CliError::runtime(message)
    }
}

/// A successful CLI invocation: what to print, and the exit code (0;
/// [`EXIT_DEGRADED`] when a sweep/submit finished with failed points or a
/// `test` report is degraded; 1 when `test` assertions failed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliRun {
    /// What to print to stdout.
    pub output: String,
    /// Process exit code (0, 1 for `test` assertion failures, or
    /// [`EXIT_DEGRADED`]).
    pub exit_code: i32,
}

impl CliRun {
    fn ok(output: String) -> Self {
        Self {
            output,
            exit_code: 0,
        }
    }
}

/// Exit code of a sweep/submit that completed but with failed points: the
/// report is real (every failed point is named in it), yet the run is
/// *degraded*, and scripts must be able to tell.
pub const EXIT_DEGRADED: i32 = 3;

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CliError {}

/// Parses the arguments following the binary name.
pub fn parse(args: &[String]) -> Result<Command, CliError> {
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        None | Some("help") | Some("--help") | Some("-h") => Ok(Command::Help),
        Some("list") => {
            if let Some(extra) = it.next() {
                return Err(CliError::usage(format!(
                    "unexpected argument `{extra}` after `list`"
                )));
            }
            Ok(Command::List)
        }
        Some("show") => {
            let id = it
                .next()
                .ok_or_else(|| CliError::usage("`show` takes an experiment id"))?;
            if let Some(extra) = it.next() {
                return Err(CliError::usage(format!(
                    "unexpected argument `{extra}` after `show {id}`"
                )));
            }
            Ok(Command::Show(id.clone()))
        }
        Some("run") => parse_run(it.as_slice()).map(Command::Run),
        Some("sweep") => parse_sweep(it.as_slice()).map(Command::Sweep),
        Some("bench") => parse_bench(it.as_slice()).map(Command::Bench),
        Some("diff") => parse_diff(it.as_slice()).map(Command::Diff),
        Some("test") => parse_test(it.as_slice()).map(Command::Test),
        Some("trace") => parse_trace(it.as_slice()).map(Command::Trace),
        Some("serve") => parse_serve(it.as_slice()).map(Command::Serve),
        Some("submit") => parse_submit(it.as_slice()).map(Command::Submit),
        Some("jobs") => parse_connect(it.as_slice(), "jobs").map(Command::Jobs),
        Some("shutdown") => parse_connect(it.as_slice(), "shutdown").map(Command::Shutdown),
        Some(other) => Err(CliError::usage(format!(
            "unknown subcommand `{other}`; try `elsq-lab help`"
        ))),
    }
}

fn parse_bench(args: &[String]) -> Result<BenchArgs, CliError> {
    let mut bench = BenchArgs {
        quick: false,
        commits: None,
        seed: None,
        label: None,
        out: None,
        format: OutputFormat::Text,
        check: None,
        max_regress: 0.30,
        trace: None,
        sample: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value_of = |flag: &str| -> Result<&String, CliError> {
            it.next()
                .ok_or_else(|| CliError::usage(format!("`{flag}` requires a value")))
        };
        match arg.as_str() {
            "--quick" => bench.quick = true,
            "--commits" => bench.commits = Some(parse_num(value_of("--commits")?, "--commits")?),
            "--seed" => bench.seed = Some(parse_num(value_of("--seed")?, "--seed")?),
            "--label" => bench.label = Some(value_of("--label")?.clone()),
            "--out" => bench.out = Some(PathBuf::from(value_of("--out")?)),
            "--format" => match OutputFormat::parse(value_of("--format")?)? {
                OutputFormat::Csv => {
                    return Err(CliError::usage("`bench` supports text or json, not csv"));
                }
                format => bench.format = format,
            },
            "--check" => bench.check = Some(PathBuf::from(value_of("--check")?)),
            "--trace" => bench.trace = Some(PathBuf::from(value_of("--trace")?)),
            "--sample" => bench.sample = Some(parse_sample(value_of("--sample")?)?),
            "--max-regress" => {
                let pct: u64 = parse_num(value_of("--max-regress")?, "--max-regress")?;
                if pct > 100 {
                    return Err(CliError::usage("`--max-regress` must be 0..=100 percent"));
                }
                bench.max_regress = pct as f64 / 100.0;
            }
            other => {
                return Err(CliError::usage(format!(
                    "unexpected argument `{other}` for `bench`"
                )));
            }
        }
    }
    Ok(bench)
}

fn parse_diff(args: &[String]) -> Result<DiffArgs, CliError> {
    let mut files = Vec::new();
    let mut tol = 0.0f64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--tol" => {
                let value = it
                    .next()
                    .ok_or_else(|| CliError::usage("`--tol` requires a value"))?;
                tol = value
                    .parse::<f64>()
                    .ok()
                    .filter(|t| t.is_finite() && *t >= 0.0)
                    .ok_or_else(|| {
                        CliError::usage(format!("invalid tolerance `{value}` for `--tol`"))
                    })?;
            }
            flag if flag.starts_with('-') => {
                return Err(CliError::usage(format!("unknown option `{flag}`")));
            }
            file => files.push(PathBuf::from(file)),
        }
    }
    let [a, b] = files.as_slice() else {
        return Err(CliError::usage(
            "`diff` takes exactly two report files: elsq-lab diff a.json b.json",
        ));
    };
    Ok(DiffArgs {
        a: a.clone(),
        b: b.clone(),
        tol,
    })
}

fn parse_test(args: &[String]) -> Result<TestArgs, CliError> {
    let mut test = TestArgs {
        paths: Vec::new(),
        cache: None,
        resume: false,
        jobs: None,
        format: OutputFormat::Text,
        out: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value_of = |flag: &str| -> Result<&String, CliError> {
            it.next()
                .ok_or_else(|| CliError::usage(format!("`{flag}` requires a value")))
        };
        match arg.as_str() {
            "--cache" => test.cache = Some(PathBuf::from(value_of("--cache")?)),
            "--resume" => test.resume = true,
            "--jobs" => {
                let n: u64 = parse_num(value_of("--jobs")?, "--jobs")?;
                if n == 0 {
                    return Err(CliError::usage("`--jobs` must be at least 1"));
                }
                test.jobs = Some(n as usize);
            }
            "--format" => match OutputFormat::parse(value_of("--format")?)? {
                OutputFormat::Csv => {
                    return Err(CliError::usage("`test` supports text or json, not csv"));
                }
                format => test.format = format,
            },
            "--out" => test.out = Some(PathBuf::from(value_of("--out")?)),
            flag if flag.starts_with('-') => {
                return Err(CliError::usage(format!("unknown option `{flag}`")));
            }
            path => test.paths.push(PathBuf::from(path)),
        }
    }
    if test.paths.is_empty() {
        return Err(CliError::usage(
            "`test` takes one or more suite files or directories: \
             elsq-lab test suites/",
        ));
    }
    if test.resume && test.cache.is_none() {
        return Err(CliError::usage("`--resume` requires `--cache DIR`"));
    }
    Ok(test)
}

fn parse_trace(args: &[String]) -> Result<TraceCmd, CliError> {
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("dump") => {
            let mut dump = TraceDumpArgs {
                workloads: Vec::new(),
                quick: false,
                commits: None,
                seed: None,
                out: PathBuf::new(),
                checkpoint_every: None,
            };
            let mut out = None;
            let mut it = it.as_slice().iter();
            while let Some(arg) = it.next() {
                let mut value_of = |flag: &str| -> Result<&String, CliError> {
                    it.next()
                        .ok_or_else(|| CliError::usage(format!("`{flag}` requires a value")))
                };
                match arg.as_str() {
                    "--quick" => dump.quick = true,
                    "--commits" => {
                        dump.commits = Some(parse_num(value_of("--commits")?, "--commits")?)
                    }
                    "--seed" => dump.seed = Some(parse_num(value_of("--seed")?, "--seed")?),
                    "--out" => out = Some(PathBuf::from(value_of("--out")?)),
                    "--checkpoint-every" => {
                        let every =
                            parse_num(value_of("--checkpoint-every")?, "--checkpoint-every")?;
                        if every == 0 {
                            return Err(CliError::usage(
                                "`--checkpoint-every` must be at least 1 instruction \
                                 (omit the flag to record a plain v1 trace)",
                            ));
                        }
                        dump.checkpoint_every = Some(every);
                    }
                    flag if flag.starts_with('-') => {
                        return Err(CliError::usage(format!("unknown option `{flag}`")));
                    }
                    workload => dump.workloads.push(workload.to_owned()),
                }
            }
            dump.out = out.ok_or_else(|| {
                CliError::usage("`trace dump` requires `--out DIR` for the .etrc files")
            })?;
            // Selection semantics (suites vs individual names, no mixing)
            // are validated by `trace::execute_dump`, which owns them.
            Ok(TraceCmd::Dump(dump))
        }
        Some(sub @ ("info" | "verify")) => {
            let mut files = Vec::new();
            for arg in it {
                if arg.starts_with('-') {
                    return Err(CliError::usage(format!(
                        "unknown option `{arg}` for `trace {sub}`"
                    )));
                }
                files.push(PathBuf::from(arg));
            }
            if files.is_empty() {
                return Err(CliError::usage(format!(
                    "`trace {sub}` takes one or more .etrc files"
                )));
            }
            let files = TraceFileArgs { files };
            Ok(if sub == "info" {
                TraceCmd::Info(files)
            } else {
                TraceCmd::Verify(files)
            })
        }
        Some(other) => Err(CliError::usage(format!(
            "unknown trace subcommand `{other}`; expected dump, info or verify"
        ))),
        None => Err(CliError::usage(
            "`trace` needs a subcommand: dump, info or verify",
        )),
    }
}

/// Parses one `--axis NAME=V1,V2,...` specification.
fn parse_axis_spec(spec: &str) -> Result<Axis, CliError> {
    let Some((name, values)) = spec.split_once('=') else {
        return Err(CliError::usage(format!(
            "malformed `--axis {spec}`: expected NAME=VALUE[,VALUE...]"
        )));
    };
    if name.is_empty() {
        return Err(CliError::usage(format!(
            "malformed `--axis {spec}`: the axis has no name"
        )));
    }
    let values: Vec<String> = values.split(',').map(str::to_owned).collect();
    if values.iter().any(String::is_empty) {
        return Err(CliError::usage(format!(
            "malformed `--axis {spec}`: empty value in the list"
        )));
    }
    Ok(Axis {
        name: name.to_owned(),
        values,
    })
}

fn parse_sweep(args: &[String]) -> Result<SweepArgs, CliError> {
    let mut sweep = SweepArgs {
        scenario: None,
        axes: Vec::new(),
        base: None,
        classes: None,
        name: None,
        quick: false,
        commits: None,
        seed: None,
        cache: None,
        resume: false,
        format: OutputFormat::Text,
        out: None,
        jobs: None,
        trace: None,
        no_batch: false,
        fault_plan: None,
        sample: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value_of = |flag: &str| -> Result<&String, CliError> {
            it.next()
                .ok_or_else(|| CliError::usage(format!("`{flag}` requires a value")))
        };
        match arg.as_str() {
            "--scenario" => sweep.scenario = Some(PathBuf::from(value_of("--scenario")?)),
            "--axis" => sweep.axes.push(parse_axis_spec(value_of("--axis")?)?),
            "--base" => sweep.base = Some(value_of("--base")?.clone()),
            "--classes" => sweep.classes = Some(value_of("--classes")?.clone()),
            "--name" => sweep.name = Some(value_of("--name")?.clone()),
            "--quick" => sweep.quick = true,
            "--commits" => sweep.commits = Some(parse_num(value_of("--commits")?, "--commits")?),
            "--seed" => sweep.seed = Some(parse_num(value_of("--seed")?, "--seed")?),
            "--cache" => sweep.cache = Some(PathBuf::from(value_of("--cache")?)),
            "--resume" => sweep.resume = true,
            "--format" => sweep.format = OutputFormat::parse(value_of("--format")?)?,
            "--out" => sweep.out = Some(PathBuf::from(value_of("--out")?)),
            "--jobs" => {
                let n: u64 = parse_num(value_of("--jobs")?, "--jobs")?;
                if n == 0 {
                    return Err(CliError::usage("`--jobs` must be at least 1"));
                }
                sweep.jobs = Some(n as usize);
            }
            "--trace" => sweep.trace = Some(PathBuf::from(value_of("--trace")?)),
            "--sample" => sweep.sample = Some(parse_sample(value_of("--sample")?)?),
            "--no-batch" => sweep.no_batch = true,
            "--fault-plan" => sweep.fault_plan = Some(PathBuf::from(value_of("--fault-plan")?)),
            other => {
                return Err(CliError::usage(format!(
                    "unexpected argument `{other}` for `sweep`"
                )));
            }
        }
    }
    if sweep.scenario.is_some() {
        if !sweep.axes.is_empty()
            || sweep.base.is_some()
            || sweep.classes.is_some()
            || sweep.name.is_some()
        {
            return Err(CliError::usage(
                "`--scenario FILE` conflicts with the ad-hoc grid flags \
                 (--axis/--base/--classes/--name); the file specifies them",
            ));
        }
    } else if sweep.axes.is_empty() {
        return Err(CliError::usage(
            "no grid selected; pass `--axis NAME=V1,V2,...` flags or `--scenario FILE`",
        ));
    }
    if sweep.resume && sweep.cache.is_none() {
        return Err(CliError::usage("`--resume` requires `--cache DIR`"));
    }
    Ok(sweep)
}

fn parse_serve(args: &[String]) -> Result<ServeArgs, CliError> {
    let mut addr = elsq_serve::protocol::DEFAULT_ADDR.to_owned();
    let mut store = None;
    let mut resume = false;
    let mut jobs = None;
    let mut watchdog = None;
    let mut fault_plan = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value_of = |flag: &str| -> Result<&String, CliError> {
            it.next()
                .ok_or_else(|| CliError::usage(format!("`{flag}` requires a value")))
        };
        match arg.as_str() {
            "--addr" => addr = value_of("--addr")?.clone(),
            "--store" => store = Some(PathBuf::from(value_of("--store")?)),
            "--resume" => resume = true,
            "--jobs" => {
                let n: u64 = parse_num(value_of("--jobs")?, "--jobs")?;
                if n == 0 {
                    return Err(CliError::usage("`--jobs` must be at least 1"));
                }
                jobs = Some(n as usize);
            }
            "--watchdog" => {
                let secs: u64 = parse_num(value_of("--watchdog")?, "--watchdog")?;
                if secs == 0 {
                    return Err(CliError::usage(
                        "`--watchdog` must be at least 1 second (omit the flag \
                         to disable the watchdog)",
                    ));
                }
                watchdog = Some(secs);
            }
            "--fault-plan" => fault_plan = Some(PathBuf::from(value_of("--fault-plan")?)),
            "--cache" => {
                return Err(CliError::usage(
                    "`serve` takes `--store DIR`, not `--cache`: the store \
                     is the daemon's result cache",
                ));
            }
            other => {
                return Err(CliError::usage(format!(
                    "unexpected argument `{other}` for `serve`"
                )));
            }
        }
    }
    let Some(store) = store else {
        return Err(CliError::usage(
            "`serve` requires `--store DIR` — the shared result-store (and \
             job journal) directory clients will be answered from",
        ));
    };
    Ok(ServeArgs {
        addr,
        store,
        resume,
        jobs,
        watchdog,
        fault_plan,
    })
}

fn parse_submit(args: &[String]) -> Result<SubmitArgs, CliError> {
    let mut connect = elsq_serve::protocol::DEFAULT_ADDR.to_owned();
    let mut job = None;
    let mut timeout = DEFAULT_CLIENT_TIMEOUT_SECS;
    let mut grid = SweepArgs {
        scenario: None,
        axes: Vec::new(),
        base: None,
        classes: None,
        name: None,
        quick: false,
        commits: None,
        seed: None,
        cache: None,
        resume: false,
        format: OutputFormat::Text,
        out: None,
        jobs: None,
        trace: None,
        no_batch: false,
        fault_plan: None,
        sample: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value_of = |flag: &str| -> Result<&String, CliError> {
            it.next()
                .ok_or_else(|| CliError::usage(format!("`{flag}` requires a value")))
        };
        match arg.as_str() {
            "--connect" => connect = value_of("--connect")?.clone(),
            "--job" => job = Some(value_of("--job")?.clone()),
            "--timeout" => timeout = parse_num(value_of("--timeout")?, "--timeout")?,
            "--scenario" => grid.scenario = Some(PathBuf::from(value_of("--scenario")?)),
            "--axis" => grid.axes.push(parse_axis_spec(value_of("--axis")?)?),
            "--base" => grid.base = Some(value_of("--base")?.clone()),
            "--classes" => grid.classes = Some(value_of("--classes")?.clone()),
            "--name" => grid.name = Some(value_of("--name")?.clone()),
            "--quick" => grid.quick = true,
            "--commits" => grid.commits = Some(parse_num(value_of("--commits")?, "--commits")?),
            "--seed" => grid.seed = Some(parse_num(value_of("--seed")?, "--seed")?),
            "--sample" => grid.sample = Some(parse_sample(value_of("--sample")?)?),
            "--format" => grid.format = OutputFormat::parse(value_of("--format")?)?,
            "--out" => grid.out = Some(PathBuf::from(value_of("--out")?)),
            flag @ ("--cache" | "--resume") => {
                return Err(CliError::usage(format!(
                    "`{flag}` is not a `submit` flag: the daemon owns the \
                     result store (`elsq-lab serve --store DIR`)"
                )));
            }
            other => {
                return Err(CliError::usage(format!(
                    "unexpected argument `{other}` for `submit`"
                )));
            }
        }
    }
    if grid.scenario.is_some() {
        if !grid.axes.is_empty()
            || grid.base.is_some()
            || grid.classes.is_some()
            || grid.name.is_some()
        {
            return Err(CliError::usage(
                "`--scenario FILE` conflicts with the ad-hoc grid flags \
                 (--axis/--base/--classes/--name); the file specifies them",
            ));
        }
    } else if grid.axes.is_empty() {
        return Err(CliError::usage(
            "no grid selected; pass `--axis NAME=V1,V2,...` flags or `--scenario FILE`",
        ));
    }
    if let Some(id) = &job {
        elsq_serve::job::validate_job_id(id).map_err(CliError::usage)?;
    }
    Ok(SubmitArgs {
        connect,
        job,
        grid,
        timeout,
    })
}

fn parse_connect(args: &[String], verb: &str) -> Result<ConnectArgs, CliError> {
    let mut connect = elsq_serve::protocol::DEFAULT_ADDR.to_owned();
    let mut timeout = DEFAULT_CLIENT_TIMEOUT_SECS;
    let mut now = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value_of = |flag: &str| -> Result<&String, CliError> {
            it.next()
                .ok_or_else(|| CliError::usage(format!("`{flag}` requires a value")))
        };
        match arg.as_str() {
            "--connect" => connect = value_of("--connect")?.clone(),
            "--timeout" => timeout = parse_num(value_of("--timeout")?, "--timeout")?,
            "--now" if verb == "shutdown" => now = true,
            other => {
                return Err(CliError::usage(format!(
                    "unexpected argument `{other}` for `{verb}`"
                )));
            }
        }
    }
    Ok(ConnectArgs {
        connect,
        timeout,
        now,
    })
}

fn parse_run(args: &[String]) -> Result<RunArgs, CliError> {
    let mut run = RunArgs {
        ids: Vec::new(),
        all: false,
        quick: false,
        commits: None,
        seed: None,
        format: OutputFormat::Text,
        out: None,
        jobs: None,
        sequential: false,
        trace: None,
        cache: None,
        resume: false,
        sample: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value_of = |flag: &str| -> Result<&String, CliError> {
            it.next()
                .ok_or_else(|| CliError::usage(format!("`{flag}` requires a value")))
        };
        match arg.as_str() {
            "--all" => run.all = true,
            "--quick" => run.quick = true,
            "--sequential" => run.sequential = true,
            "--commits" => run.commits = Some(parse_num(value_of("--commits")?, "--commits")?),
            "--seed" => run.seed = Some(parse_num(value_of("--seed")?, "--seed")?),
            "--jobs" => {
                let n: u64 = parse_num(value_of("--jobs")?, "--jobs")?;
                if n == 0 {
                    return Err(CliError::usage("`--jobs` must be at least 1"));
                }
                run.jobs = Some(n as usize);
            }
            "--format" => run.format = OutputFormat::parse(value_of("--format")?)?,
            "--out" => run.out = Some(PathBuf::from(value_of("--out")?)),
            "--trace" => run.trace = Some(PathBuf::from(value_of("--trace")?)),
            "--cache" => run.cache = Some(PathBuf::from(value_of("--cache")?)),
            "--resume" => run.resume = true,
            "--sample" => run.sample = Some(parse_sample(value_of("--sample")?)?),
            flag if flag.starts_with('-') => {
                return Err(CliError::usage(format!("unknown option `{flag}`")));
            }
            id => run.ids.push(id.to_owned()),
        }
    }
    if run.all && !run.ids.is_empty() {
        return Err(CliError::usage(
            "pass either experiment ids or `--all`, not both",
        ));
    }
    if !run.all && run.ids.is_empty() {
        return Err(CliError::usage(
            "no experiments selected; pass ids or `--all` (see `elsq-lab list`)",
        ));
    }
    if run.resume && run.cache.is_none() {
        return Err(CliError::usage("`--resume` requires `--cache DIR`"));
    }
    Ok(run)
}

fn parse_num(s: &str, flag: &str) -> Result<u64, CliError> {
    s.parse()
        .map_err(|_| CliError::usage(format!("invalid value `{s}` for `{flag}`")))
}

/// Parses a `--sample PERIOD:WINDOW[:WARMUP]` specification; malformed
/// specs are loud usage errors (exit 2) carrying the validator's reason.
fn parse_sample(s: &str) -> Result<SamplingSpec, CliError> {
    SamplingSpec::parse(s).map_err(|e| CliError::usage(format!("invalid `--sample {s}`: {e}")))
}

/// Resolves the experiments a run selects, in registry order for `--all`
/// and in command-line order otherwise.
pub fn select_experiments(run: &RunArgs) -> Result<Vec<&'static dyn Experiment>, CliError> {
    if run.all {
        return Ok(registry().to_vec());
    }
    run.ids
        .iter()
        .map(|id| {
            elsq_sim::experiments::find(id).ok_or_else(|| {
                let known: Vec<&str> = registry().iter().map(|e| e.id()).collect();
                CliError::usage(format!(
                    "unknown experiment `{id}`; known ids: {}",
                    known.join(", ")
                ))
            })
        })
        .collect()
}

/// The parameters one experiment runs with, after `--quick`, `--commits`
/// and `--seed` are applied on top of its default preset.
pub fn effective_params(experiment: &dyn Experiment, run: &RunArgs) -> ExperimentParams {
    let mut params = if run.quick {
        ExperimentParams::quick()
    } else {
        experiment.default_params()
    };
    if let Some(commits) = run.commits {
        params.commits = commits;
    }
    if let Some(seed) = run.seed {
        params.seed = seed;
    }
    if let Some(sample) = run.sample {
        params.sample = Some(sample);
    }
    params
}

/// Renders one report in the requested format.
pub fn render_report(report: &Report, format: OutputFormat) -> String {
    match format {
        OutputFormat::Text => report.render(),
        OutputFormat::Csv => report.to_csv(),
        OutputFormat::Json => {
            serde_json::to_string_pretty(report).expect("reports always serialize")
        }
    }
}

/// Renders a whole run (every report) for stdout in the requested format.
pub fn render_reports(reports: &[Report], format: OutputFormat) -> String {
    match format {
        OutputFormat::Json => {
            serde_json::to_string_pretty(&reports.to_vec()).expect("reports always serialize")
        }
        _ => {
            let mut out = String::new();
            for (i, report) in reports.iter().enumerate() {
                if i > 0 {
                    out.push('\n');
                }
                out.push_str(&render_report(report, format));
            }
            out
        }
    }
}

/// The `elsq-lab list` output: one line per experiment — id, default
/// preset, title — in registry order.
pub fn list_output() -> String {
    let mut out = String::new();
    let id_width = registry().iter().map(|e| e.id().len()).max().unwrap_or(0);
    for e in registry() {
        let p = e.default_params();
        out.push_str(&format!(
            "{:<id_width$}  commits={:<6} seed={}  {}\n",
            e.id(),
            p.commits,
            p.seed,
            e.title()
        ));
    }
    out
}

/// Serializes in-process runs under test: the unit tests drive the execute
/// functions in-process and libtest runs them in parallel, but the
/// `--trace` and `--cache` overrides are process-global (and `run_suite`
/// panics on a mismatch against an installed roster), so one test's
/// override window must never observe another test's parameters.
#[cfg(test)]
pub(crate) fn run_lock() -> std::sync::MutexGuard<'static, ()> {
    static RUN_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    RUN_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Runs `f` with `ELSQ_THREADS` pinned to `jobs` (when set).
///
/// The pool reads `ELSQ_THREADS` at every fan-out, so `--jobs` caps each
/// level (experiments, and each suite inside one) rather than the whole
/// process — `--jobs 1` is exactly sequential, larger values are a
/// per-level budget. The previous value is restored afterwards so the cap
/// cannot leak into later invocations from the same process (e.g. the
/// in-process tests).
fn with_jobs<R>(jobs: Option<usize>, f: impl FnOnce() -> R) -> R {
    let saved = jobs.map(|jobs| {
        let previous = std::env::var("ELSQ_THREADS").ok();
        std::env::set_var("ELSQ_THREADS", jobs.to_string());
        previous
    });
    let result = f();
    if let Some(previous) = saved {
        match previous {
            Some(value) => std::env::set_var("ELSQ_THREADS", value),
            None => std::env::remove_var("ELSQ_THREADS"),
        }
    }
    result
}

/// Opens `--cache DIR` (honouring `--resume`) and installs it as the
/// process-global result store for the duration of the returned guards.
fn open_cache(
    cache: &Option<PathBuf>,
    resume: bool,
) -> Result<Option<(Arc<ResultStore>, elsq_sim::driver::ResultCacheGuard)>, CliError> {
    let Some(dir) = cache else {
        return Ok(None);
    };
    let store = Arc::new(
        ResultStore::open(dir, resume)
            .map_err(|e| CliError::runtime(format!("--cache {}: {e}", dir.display())))?,
    );
    let guard = install_result_cache(Arc::clone(&store));
    Ok(Some((store, guard)))
}

/// The `cache: H hit(s), M miss(es)` summary line printed after cached
/// runs.
fn cache_summary(store: &ResultStore) -> String {
    format!(
        "cache {}: {} hit(s), {} miss(es), {} point(s) on disk\n",
        store.dir().display(),
        store.hits(),
        store.misses(),
        store.len()
    )
}

/// Executes a run and returns the produced reports (in selection order).
pub fn execute_run(run: &RunArgs) -> Result<Vec<Report>, CliError> {
    #[cfg(test)]
    let _serial = run_lock();
    let experiments = select_experiments(run)?;
    let jobs: Vec<(&'static dyn Experiment, ExperimentParams)> = experiments
        .into_iter()
        .map(|e| (e, effective_params(e, run)))
        .collect();
    // `--trace DIR`: load, verify and validate the recorded roster before
    // anything runs, then install it as the process-global workload source
    // for the duration of the run (the guard restores the generators).
    let _trace_guard = match &run.trace {
        Some(dir) => {
            let ids: Vec<_> = jobs
                .iter()
                .map(|(e, p)| (e.id(), e.classes(), *p))
                .collect();
            Some(crate::trace::install_roster(dir, &ids)?)
        }
        None => None,
    };
    let _cache = open_cache(&run.cache, run.resume)?;
    Ok(with_jobs(run.jobs, || {
        run_experiments(jobs, !run.sequential)
    }))
}

/// Resolves a `--classes` selection.
fn parse_classes(sel: &str) -> Result<Vec<WorkloadClass>, CliError> {
    match sel {
        "both" => Ok(vec![WorkloadClass::Fp, WorkloadClass::Int]),
        "fp" => Ok(vec![WorkloadClass::Fp]),
        "int" => Ok(vec![WorkloadClass::Int]),
        other => Err(CliError::usage(format!(
            "unknown class selection `{other}` (expected fp, int or both)"
        ))),
    }
}

/// Builds the effective [`ScenarioSpec`] of a sweep invocation: the
/// scenario file or the ad-hoc flags, with `--quick`/`--commits`/`--seed`
/// layered on top.
pub fn sweep_spec(sweep: &SweepArgs) -> Result<ScenarioSpec, CliError> {
    let mut spec = match &sweep.scenario {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| CliError::runtime(format!("cannot read {}: {e}", path.display())))?;
            let spec: ScenarioSpec = serde_json::from_str(&text).map_err(|e| {
                CliError::runtime(format!("{} is not a scenario file: {e}", path.display()))
            })?;
            spec
        }
        None => ScenarioSpec {
            name: sweep.name.clone().unwrap_or_else(|| "adhoc".to_owned()),
            base: sweep
                .base
                .clone()
                .unwrap_or_else(|| "fmc-hash-sqm".to_owned()),
            axes: sweep.axes.clone(),
            classes: parse_classes(sweep.classes.as_deref().unwrap_or("both"))?,
            params: ExperimentParams::sweep(),
        },
    };
    // `--quick` is a commit-budget preset; it must not clobber a scenario
    // file's seed (the seed feeds every cache key).
    if sweep.quick {
        spec.params.commits = ExperimentParams::quick().commits;
    }
    if let Some(commits) = sweep.commits {
        spec.params.commits = commits;
    }
    if let Some(seed) = sweep.seed {
        spec.params.seed = seed;
    }
    if let Some(sample) = sweep.sample {
        spec.params.sample = Some(sample);
    }
    Ok(spec)
}

/// The outcome of a sweep: the merged report plus, when a cache was in
/// play, its hit/miss statistics.
#[derive(Debug)]
pub struct SweepOutcome {
    /// The merged report (one table, one row per grid point and class).
    pub report: Report,
    /// `(hits, misses)` of the cache, if one was installed.
    pub cache: Option<(u64, u64)>,
    /// The `cache ...` summary line, if a cache was installed.
    pub cache_line: Option<String>,
    /// One line per failed point (empty when the sweep is healthy); a
    /// non-empty list makes the run exit [`EXIT_DEGRADED`].
    pub failed: Vec<String>,
}

/// Executes a sweep: expands the grid, runs it (consulting the cache when
/// one is configured) and assembles the merged report.
pub fn execute_sweep(sweep: &SweepArgs) -> Result<SweepOutcome, CliError> {
    #[cfg(test)]
    let _serial = run_lock();
    let spec = sweep_spec(sweep)?;
    let plan = spec.expand().map_err(CliError::usage)?;
    let _trace_guard = match &sweep.trace {
        Some(dir) => Some(crate::trace::install_roster(
            dir,
            &[("sweep", spec.classes.as_slice(), spec.params)],
        )?),
        None => None,
    };
    let cache = open_cache(&sweep.cache, sweep.resume)?;
    let results = with_jobs(sweep.jobs, || {
        if sweep.no_batch {
            run_plan_each(&plan, &spec.params)
        } else {
            run_plan(&plan, &spec.params)
        }
    });
    let report = sweep_report(&spec, &plan, &results);
    let failed = results
        .failed()
        .iter()
        .map(|(point, site, msg)| {
            format!(
                "FAILED point `{}` ({}) at {site}: {msg}\n",
                point.label, point.class
            )
        })
        .collect();
    let (cache_stats, cache_line) = match &cache {
        Some((store, _guard)) => (
            Some((store.hits(), store.misses())),
            Some(cache_summary(store)),
        ),
        None => (None, None),
    };
    Ok(SweepOutcome {
        report,
        cache: cache_stats,
        cache_line,
        failed,
    })
}

/// Executes `serve`: starts the daemon, prints the bound address (flushed
/// eagerly, so wrappers can wait for readiness before connecting), and
/// blocks until a client requests shutdown.
pub fn execute_serve(serve: &ServeArgs) -> Result<String, CliError> {
    // SIGTERM behaves like `shutdown --now`: stop accepting, cancel the
    // running job at its next group boundary, journal, exit cleanly.
    elsq_serve::signal::install_sigterm().map_err(CliError::runtime)?;
    let handle = Server::start(ServeConfig {
        addr: serve.addr.clone(),
        store_dir: serve.store.clone(),
        resume: serve.resume,
        watchdog: serve.watchdog.map(std::time::Duration::from_secs),
    })
    .map_err(CliError::runtime)?;
    {
        use std::io::Write as _;
        let mut out = std::io::stdout();
        let _ = writeln!(
            out,
            "elsq-serve listening on {} (store {})",
            handle.local_addr(),
            serve.store.display()
        );
        let _ = out.flush();
    }
    with_jobs(serve.jobs, || handle.join());
    Ok("server stopped; queued jobs stay journaled in the store\n".to_owned())
}

/// Executes `submit`: builds the spec exactly like `sweep`, streams the
/// job's progress, and renders the final report — byte-identical to the
/// offline sweep of the same spec. A job that finished with failed points
/// returns the (degraded) report with exit code [`EXIT_DEGRADED`].
pub fn execute_submit(submit: &SubmitArgs) -> Result<CliRun, CliError> {
    let spec = sweep_spec(&submit.grid)?;
    // JSON-to-stdout stays pure JSON (`| jq` works); in every other mode
    // progress streams to stdout as the daemon reports it.
    let stream_progress = submit.grid.format != OutputFormat::Json || submit.grid.out.is_some();
    // Collected across the stream so the degraded summary can *name* every
    // failed point even in JSON mode (where nothing streams to stdout).
    let failed_lines = std::cell::RefCell::new(Vec::<String>::new());
    let progress = |event: &Event| {
        if let Event::PointFailed {
            label,
            class,
            site,
            error,
            ..
        } = event
        {
            failed_lines.borrow_mut().push(format!(
                "FAILED point `{label}` ({class}) at {site}: {error}\n"
            ));
        }
        if !stream_progress {
            return;
        }
        use std::io::Write as _;
        let mut out = std::io::stdout();
        match event {
            Event::Accepted {
                job,
                points,
                attached,
            } => {
                let how = if *attached {
                    "attached to"
                } else {
                    "accepted as"
                };
                let _ = writeln!(out, "{how} job {job}: {points} point(s)");
            }
            Event::Point {
                done,
                total,
                label,
                class,
                cached,
                ..
            } => {
                let src = if *cached { "cache" } else { "simulated" };
                let _ = writeln!(out, "[{done}/{total}] {label} {class} ({src})");
            }
            Event::PointFailed {
                done,
                total,
                label,
                class,
                site,
                error,
                ..
            } => {
                let _ = writeln!(
                    out,
                    "[{done}/{total}] {label} {class} FAILED at {site}: {error}"
                );
            }
            _ => {}
        }
        let _ = out.flush();
    };
    let outcome = client::submit_with(
        &submit.connect,
        submit.job.as_deref(),
        &spec,
        &client_config(submit.timeout),
        progress,
    )
    .map_err(client_error)?;
    let mut summary = submit_summary(&outcome);
    if outcome.failed > 0 {
        for line in failed_lines.borrow().iter() {
            summary.push_str(line);
        }
        summary.push_str(&format!(
            "degraded: {} point(s) failed; resubmit job {} to re-run them\n",
            outcome.failed, outcome.job
        ));
    }
    let exit_code = if outcome.failed > 0 { EXIT_DEGRADED } else { 0 };
    let reports = [outcome.report];
    let output = match &submit.grid.out {
        Some(dir) => {
            let mut output = write_reports(&reports, dir, submit.grid.format)?;
            output.push_str(&summary);
            output
        }
        None => {
            let mut output = render_reports(&reports, submit.grid.format);
            if submit.grid.format != OutputFormat::Json {
                output.push('\n');
                output.push_str(&summary);
            }
            output
        }
    };
    Ok(CliRun { output, exit_code })
}

/// The `job ...` summary line printed after a submit (the `100% cache
/// hits` tag is what the CI smoke greps for). A degraded job's line counts
/// its failed points; a healthy job's line is byte-identical to what
/// earlier releases printed.
fn submit_summary(outcome: &client::SubmitOutcome) -> String {
    let all_cached = if outcome.misses == 0 && outcome.hits > 0 && outcome.failed == 0 {
        " (100% cache hits)"
    } else {
        ""
    };
    let failed = if outcome.failed > 0 {
        format!(", {} failed", outcome.failed)
    } else {
        String::new()
    };
    format!(
        "job {}: {} hit(s), {} miss(es){failed}{all_cached}; server store has {} point(s)\n",
        outcome.job, outcome.hits, outcome.misses, outcome.store_points
    )
}

/// Executes `jobs`: the daemon's job table, one aligned line per job.
pub fn execute_jobs(connect: &ConnectArgs) -> Result<String, CliError> {
    let jobs = client::jobs_with(&connect.connect, &client_config(connect.timeout))
        .map_err(client_error)?;
    if jobs.is_empty() {
        return Ok("no jobs\n".to_owned());
    }
    let id_width = jobs.iter().map(|j| j.id.len()).max().unwrap_or(0).max(2);
    let name_width = jobs.iter().map(|j| j.name.len()).max().unwrap_or(0).max(4);
    let mut out = format!(
        "{:<id_width$}  {:<name_width$}  {:<7}  {:>9}  {:>5}  {:>6}  {:>6}\n",
        "ID", "NAME", "STATE", "POINTS", "HITS", "MISSES", "FAILED"
    );
    for j in jobs {
        out.push_str(&format!(
            "{:<id_width$}  {:<name_width$}  {:<7}  {:>4}/{:<4}  {:>5}  {:>6}  {:>6}{}\n",
            j.id,
            j.name,
            format!("{:?}", j.state),
            j.completed,
            j.total,
            j.hits,
            j.misses,
            j.failed,
            j.error
                .as_deref()
                .map(|e| format!("  {e}"))
                .unwrap_or_default()
        ));
    }
    Ok(out)
}

/// Executes `shutdown`: asks the daemon to stop — draining by default,
/// cancelling the running job at its next group boundary with `--now`.
pub fn execute_shutdown(connect: &ConnectArgs) -> Result<String, CliError> {
    client::shutdown_with(
        &connect.connect,
        !connect.now,
        &client_config(connect.timeout),
    )
    .map_err(client_error)?;
    let how = if connect.now {
        "the running job is cancelled at its next group boundary and re-queued"
    } else {
        "the running job finishes first"
    };
    Ok(format!(
        "server at {} is stopping ({how}; queued jobs stay journaled)\n",
        connect.connect
    ))
}

/// The `elsq-lab show <id>` payload: identification, the default
/// parameters, the advertised classes and the declared config grid.
#[derive(Serialize)]
struct ShowOutput {
    id: String,
    title: String,
    default_params: ExperimentParams,
    classes: Vec<WorkloadClass>,
    plan: SweepPlan,
}

/// Executes `show <id>`: the experiment's parameters and grid as JSON.
pub fn execute_show(id: &str) -> Result<String, CliError> {
    let experiment = elsq_sim::experiments::find(id).ok_or_else(|| {
        let known: Vec<&str> = registry().iter().map(|e| e.id()).collect();
        CliError::usage(format!(
            "unknown experiment `{id}`; known ids: {}",
            known.join(", ")
        ))
    })?;
    let output = ShowOutput {
        id: experiment.id().to_owned(),
        title: experiment.title().to_owned(),
        default_params: experiment.default_params(),
        classes: experiment.classes().to_vec(),
        plan: experiment.plan(),
    };
    let mut json = serde_json::to_string_pretty(&output).expect("show output always serializes");
    json.push('\n');
    Ok(json)
}

/// Writes per-experiment files into `--out DIR` and returns the summary
/// lines printed to stdout.
pub fn write_reports(
    reports: &[Report],
    dir: &std::path::Path,
    format: OutputFormat,
) -> Result<String, CliError> {
    std::fs::create_dir_all(dir)
        .map_err(|e| CliError::runtime(format!("cannot create {}: {e}", dir.display())))?;
    let mut summary = String::new();
    for report in reports {
        let path = dir.join(format!("{}.{}", report.id, format.extension()));
        std::fs::write(&path, render_report(report, format))
            .map_err(|e| CliError::runtime(format!("cannot write {}: {e}", path.display())))?;
        summary.push_str(&format!(
            "{}: {} table(s), {:.1} ms -> {}\n",
            report.id,
            report.tables.len(),
            report.wall_time_ms,
            path.display()
        ));
    }
    Ok(summary)
}

/// Executes a bench invocation: runs the roster, writes the JSON file when
/// `--label`/`--out` select one, and applies the `--check` comparison.
pub fn execute_bench(bench: &BenchArgs) -> Result<String, CliError> {
    #[cfg(test)]
    let _serial = run_lock();
    let commits = bench.commits.unwrap_or(if bench.quick {
        BENCH_COMMITS_QUICK
    } else {
        BENCH_COMMITS
    });
    let params = BenchParams {
        commits,
        seed: bench.seed.unwrap_or(BENCH_SEED),
        label: bench.label.clone().unwrap_or_else(|| "local".to_owned()),
        sample: bench.sample,
    };
    let _trace_guard = match &bench.trace {
        Some(dir) => Some(crate::trace::install_roster(
            dir,
            &[(
                "bench",
                &[WorkloadClass::Fp, WorkloadClass::Int],
                ExperimentParams {
                    commits: params.commits,
                    seed: params.seed,
                    sample: None,
                },
            )],
        )?),
        None => None,
    };
    let report = run_bench(&params);
    // In JSON mode, stdout carries *only* the report (so `| jq` works); the
    // file-write notice and check comparison are text-mode affordances, and
    // a failed check still reaches stderr through the returned error.
    let json_only = bench.format == OutputFormat::Json;
    let mut output = if json_only {
        let mut json =
            serde_json::to_string_pretty(&report).expect("bench reports always serialize");
        json.push('\n');
        json
    } else {
        report.render()
    };
    let path = bench
        .out
        .clone()
        .or_else(|| bench.label.as_deref().map(default_out_path));
    if let Some(path) = path {
        let json = serde_json::to_string_pretty(&report).expect("bench reports always serialize");
        std::fs::write(&path, json)
            .map_err(|e| CliError::runtime(format!("cannot write {}: {e}", path.display())))?;
        if !json_only {
            output.push_str(&format!("wrote {}\n", path.display()));
        }
    }
    if let Some(baseline_path) = &bench.check {
        let text = std::fs::read_to_string(baseline_path).map_err(|e| {
            CliError::runtime(format!("cannot read {}: {e}", baseline_path.display()))
        })?;
        let value: serde::Value = serde_json::from_str(&text).map_err(|e| {
            CliError::runtime(format!("cannot parse {}: {e}", baseline_path.display()))
        })?;
        let baseline = baseline_from_value(&value).map_err(|e| {
            CliError::runtime(format!(
                "{} is not a bench report: {e}",
                baseline_path.display()
            ))
        })?;
        // Rates only compare like-for-like: a 5k-commit run measures
        // 1-2x the per-second rate of a 20k-commit run (warm-up dominates
        // differently), which would hollow out the threshold.
        if (baseline.commits, baseline.seed) != (report.commits, report.seed) {
            return Err(CliError::runtime(format!(
                "baseline {} was recorded at commits={} seed={} but this run used \
                 commits={} seed={}; throughput rates are not comparable across \
                 budgets — pass matching --commits/--seed or re-record the baseline",
                baseline_path.display(),
                baseline.commits,
                baseline.seed,
                report.commits,
                report.seed
            )));
        }
        match check_against_baseline(&report, &baseline, bench.max_regress) {
            Ok(comparison) => {
                if !json_only {
                    output.push_str(&comparison);
                    output.push_str("throughput check passed\n");
                }
            }
            Err(comparison) => {
                return Err(CliError::runtime(format!(
                    "{comparison}throughput regressed more than {:.0}% vs {}",
                    bench.max_regress * 100.0,
                    baseline_path.display()
                )));
            }
        }
    }
    Ok(output)
}

/// Executes a diff invocation; a mismatch is a runtime error (exit code 1)
/// whose message lists every differing cell. A file containing degraded
/// `FAILED (<site>)` cells is refused with [`EXIT_DEGRADED`] before any
/// comparison — two failure markers matching byte-for-byte says nothing
/// about the figures they replaced.
pub fn execute_diff(diff: &DiffArgs) -> Result<String, CliError> {
    let load = |path: &std::path::Path| -> Result<Vec<Report>, CliError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| CliError::runtime(format!("cannot read {}: {e}", path.display())))?;
        let reports = parse_reports(&text)
            .map_err(|e| CliError::runtime(format!("cannot parse {}: {e}", path.display())))?;
        let degraded: Vec<String> = reports
            .iter()
            .flat_map(|r| {
                let id = r.id.clone();
                degraded_cells(r)
                    .into_iter()
                    .map(move |loc| format!("  {id}: {loc}"))
            })
            .collect();
        if !degraded.is_empty() {
            return Err(CliError {
                message: format!(
                    "{} contains {} degraded cell(s) — refusing to compare a \
                     degraded report:\n{}\nre-run the experiment to replace the \
                     failed points first",
                    path.display(),
                    degraded.len(),
                    degraded.join("\n")
                ),
                exit_code: EXIT_DEGRADED,
                show_usage: false,
            });
        }
        Ok(reports)
    };
    let a = load(&diff.a)?;
    let b = load(&diff.b)?;
    let outcome = diff_reports(&a, &b, diff.tol);
    if outcome.is_match() {
        Ok(format!(
            "reports match: {} report(s), {} cell(s) compared, tol {}\n",
            a.len(),
            outcome.cells,
            diff.tol
        ))
    } else {
        Err(CliError::runtime(format!(
            "{}\nreports differ: {} mismatch(es) across {} compared cell(s)",
            outcome.mismatches.join("\n"),
            outcome.mismatches.len(),
            outcome.cells
        )))
    }
}

/// Expands the `test` operands into concrete suite files: a directory
/// contributes its `*.json` entries sorted by name, a file contributes
/// itself. A missing path or an empty directory is a loud error — a CI
/// job pointed at the wrong directory must not pass vacuously.
fn discover_suite_files(paths: &[PathBuf]) -> Result<Vec<PathBuf>, CliError> {
    let mut files = Vec::new();
    for path in paths {
        if path.is_dir() {
            let mut entries: Vec<PathBuf> = std::fs::read_dir(path)
                .map_err(|e| CliError::runtime(format!("cannot read {}: {e}", path.display())))?
                .filter_map(|entry| entry.ok().map(|e| e.path()))
                .filter(|p| p.is_file() && p.extension().is_some_and(|ext| ext == "json"))
                .collect();
            entries.sort();
            if entries.is_empty() {
                return Err(CliError::runtime(format!(
                    "{} contains no .json suite files",
                    path.display()
                )));
            }
            files.extend(entries);
        } else if path.is_file() {
            files.push(path.clone());
        } else {
            return Err(CliError::runtime(format!(
                "no such suite file or directory: {}",
                path.display()
            )));
        }
    }
    Ok(files)
}

/// The outcome of a `test` invocation: every suite's evaluated outcome
/// plus, when a cache was in play, its summary line.
#[derive(Debug)]
pub struct TestOutcome {
    /// One evaluated outcome per suite file, in discovery order.
    pub suites: Vec<SuiteOutcome>,
    /// The `cache ...` summary line, if a cache was installed.
    pub cache_line: Option<String>,
}

impl TestOutcome {
    /// The process exit code: degraded ([`EXIT_DEGRADED`]) dominates
    /// assertion failures (1) dominates all-pass (0).
    pub fn exit_code(&self) -> i32 {
        if self.suites.iter().any(|s| s.status() == Status::Degraded) {
            EXIT_DEGRADED
        } else if self.suites.iter().any(|s| s.status() == Status::Fail) {
            1
        } else {
            0
        }
    }
}

/// Executes `test`: discovers the suite files, runs each target (through
/// the `--cache` store when one is configured) and evaluates its
/// assertions.
pub fn execute_test(test: &TestArgs) -> Result<TestOutcome, CliError> {
    #[cfg(test)]
    let _serial = run_lock();
    let files = discover_suite_files(&test.paths)?;
    // Parse every file up front: a malformed suite aborts the invocation
    // before any simulation runs, not after minutes of grid time.
    let suites: Vec<(PathBuf, Suite)> = files
        .iter()
        .map(|path| {
            let text = std::fs::read_to_string(path)
                .map_err(|e| CliError::runtime(format!("cannot read {}: {e}", path.display())))?;
            let suite = Suite::from_json(&text).map_err(|e| {
                CliError::runtime(format!("{} is not a suite file: {e}", path.display()))
            })?;
            Ok((path.clone(), suite))
        })
        .collect::<Result<_, CliError>>()?;
    let cache = open_cache(&test.cache, test.resume)?;
    let outcomes = with_jobs(test.jobs, || {
        suites
            .iter()
            .map(|(path, suite)| {
                let report = suite
                    .run()
                    .map_err(|e| CliError::runtime(format!("suite {}: {e}", path.display())))?;
                // Relative `tolerance` golden paths resolve against the
                // suite file's own directory.
                let golden_dir = path.parent().unwrap_or_else(|| std::path::Path::new("."));
                let mut outcome = evaluate(suite, &report, golden_dir);
                // File *name* only: the JSON outcome report must stay
                // byte-identical across checkouts and working directories.
                outcome.source = path
                    .file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_default();
                Ok(outcome)
            })
            .collect::<Result<Vec<_>, CliError>>()
    })?;
    let cache_line = cache.as_ref().map(|(store, _guard)| {
        let mut line = cache_summary(store);
        if store.misses() == 0 && store.hits() > 0 {
            line.pop();
            line.push_str(" (100% cache hits)\n");
        }
        line
    });
    Ok(TestOutcome {
        suites: outcomes,
        cache_line,
    })
}

/// Renders a `test` outcome as a test-runner style text listing.
fn render_test_text(outcome: &TestOutcome) -> String {
    let mut out = String::new();
    for suite in &outcome.suites {
        out.push_str(&format!(
            "suite {} ({}): target {}, commits={} seed={}\n",
            suite.suite, suite.source, suite.target, suite.params.commits, suite.params.seed
        ));
        for check in &suite.checks {
            let tag = match check.status {
                Status::Pass => "PASS",
                Status::Fail => "FAIL",
                Status::Degraded => "DEGRADED",
            };
            out.push_str(&format!("  {tag} {}: {}\n", check.name, check.detail));
        }
        for loc in &suite.degraded {
            out.push_str(&format!("  DEGRADED report cell: {loc}\n"));
        }
    }
    if let Some(line) = &outcome.cache_line {
        out.push_str(line);
    }
    let (mut passed, mut failed, mut degraded) = (0usize, 0usize, 0usize);
    for suite in &outcome.suites {
        passed += suite.passed();
        failed += suite.failed();
        degraded += suite
            .checks
            .iter()
            .filter(|c| c.status == Status::Degraded)
            .count();
    }
    let degraded_suites = outcome
        .suites
        .iter()
        .filter(|s| s.status() == Status::Degraded)
        .count();
    out.push_str(&format!(
        "{} suite(s): {passed} passed, {failed} failed assertion(s)",
        outcome.suites.len()
    ));
    if degraded > 0 || degraded_suites > 0 {
        out.push_str(&format!(
            ", {degraded_suites} degraded suite(s) ({degraded} degraded assertion(s))"
        ));
    }
    out.push('\n');
    out
}

/// Renders a `test` outcome as its machine-readable JSON report: the suite
/// outcomes only — no wall times, no absolute paths — so the bytes are
/// stable across runs and checkouts (the golden fixture test pins them).
fn render_test_json(outcome: &TestOutcome) -> String {
    let mut json =
        serde_json::to_string_pretty(&outcome.suites).expect("suite outcomes always serialize");
    json.push('\n');
    json
}

/// Resolves and installs the fault plan of an invocation: the verb's
/// `--fault-plan FILE` when given, the `FAULT_PLAN` environment variable
/// otherwise. Returns the keep-alive guard (`None` when no plan applies).
fn install_faults(flag: Option<&PathBuf>) -> Result<Option<elsq_sim::FaultPlanGuard>, CliError> {
    let plan = match flag {
        Some(path) => Some(FaultPlan::load(path).map_err(CliError::usage)?),
        None => FaultPlan::from_env().map_err(CliError::usage)?,
    };
    plan.map(|plan| install_fault_plan(plan).map_err(CliError::usage))
        .transpose()
}

/// Full CLI entry point: parses `args` (without the binary name), executes,
/// and returns what should be printed to stdout plus the exit code
/// (0, or [`EXIT_DEGRADED`] for a sweep/submit with failed points).
pub fn run_cli(args: &[String]) -> Result<CliRun, CliError> {
    let command = parse(args)?;
    // The fault plan lives for the whole invocation: `--fault-plan` on the
    // verbs that run simulations locally, the environment everywhere.
    let flag = match &command {
        Command::Sweep(sweep) => sweep.fault_plan.as_ref(),
        Command::Serve(serve) => serve.fault_plan.as_ref(),
        _ => None,
    };
    let _faults = install_faults(flag)?;
    match command {
        Command::Help => Ok(CliRun::ok(format!("{USAGE}\n"))),
        Command::List => Ok(CliRun::ok(list_output())),
        Command::Show(id) => execute_show(&id).map(CliRun::ok),
        Command::Run(run) => {
            let reports = execute_run(&run)?;
            match &run.out {
                Some(dir) => write_reports(&reports, dir, run.format),
                None => Ok(render_reports(&reports, run.format)),
            }
            .map(CliRun::ok)
        }
        Command::Sweep(sweep) => {
            let outcome = execute_sweep(&sweep)?;
            let degraded = !outcome.failed.is_empty();
            let reports = [outcome.report];
            let mut output = match &sweep.out {
                Some(dir) => {
                    let mut summary = write_reports(&reports, dir, sweep.format)?;
                    if let Some(line) = &outcome.cache_line {
                        summary.push_str(line);
                    }
                    summary
                }
                None => {
                    let mut output = render_reports(&reports, sweep.format);
                    // JSON stdout stays pure JSON (`| jq` keeps working);
                    // the cache statistics are a text-mode affordance.
                    if sweep.format != OutputFormat::Json {
                        if let Some(line) = &outcome.cache_line {
                            output.push('\n');
                            output.push_str(line);
                        }
                    }
                    output
                }
            };
            if degraded {
                for line in &outcome.failed {
                    output.push_str(line);
                }
                output.push_str(&format!(
                    "degraded: {} point(s) failed; re-run to retry them\n",
                    outcome.failed.len()
                ));
            }
            Ok(CliRun {
                output,
                exit_code: if degraded { EXIT_DEGRADED } else { 0 },
            })
        }
        Command::Bench(bench) => execute_bench(&bench).map(CliRun::ok),
        Command::Diff(diff) => execute_diff(&diff).map(CliRun::ok),
        Command::Test(test) => {
            let outcome = execute_test(&test)?;
            if let Some(path) = &test.out {
                if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
                    std::fs::create_dir_all(dir).map_err(|e| {
                        CliError::runtime(format!("cannot create {}: {e}", dir.display()))
                    })?;
                }
                std::fs::write(path, render_test_json(&outcome)).map_err(|e| {
                    CliError::runtime(format!("cannot write {}: {e}", path.display()))
                })?;
            }
            let output = match test.format {
                // JSON stdout stays pure JSON (`| jq` keeps working); the
                // cache statistics are a text-mode affordance.
                OutputFormat::Json => render_test_json(&outcome),
                _ => render_test_text(&outcome),
            };
            Ok(CliRun {
                output,
                exit_code: outcome.exit_code(),
            })
        }
        Command::Trace(TraceCmd::Dump(dump)) => crate::trace::execute_dump(&dump).map(CliRun::ok),
        Command::Trace(TraceCmd::Info(files)) => crate::trace::execute_info(&files).map(CliRun::ok),
        Command::Trace(TraceCmd::Verify(files)) => {
            crate::trace::execute_verify(&files).map(CliRun::ok)
        }
        Command::Serve(serve) => execute_serve(&serve).map(CliRun::ok),
        Command::Submit(submit) => execute_submit(&submit),
        Command::Jobs(connect) => execute_jobs(&connect).map(CliRun::ok),
        Command::Shutdown(connect) => execute_shutdown(&connect).map(CliRun::ok),
    }
}

/// [`run_cli`] reduced to its stdout payload — kept for callers (and
/// tests) that do not care about the degraded exit code.
pub fn main_with_args(args: &[String]) -> Result<String, CliError> {
    run_cli(args).map(|run| run.output)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| (*a).to_owned()).collect()
    }

    #[test]
    fn parse_subcommands() {
        assert_eq!(parse(&args(&[])).unwrap(), Command::Help);
        assert_eq!(parse(&args(&["help"])).unwrap(), Command::Help);
        assert_eq!(parse(&args(&["list"])).unwrap(), Command::List);
        assert!(parse(&args(&["frobnicate"])).is_err());
        assert!(parse(&args(&["list", "extra"])).is_err());
    }

    #[test]
    fn parse_run_flags() {
        let cmd = parse(&args(&[
            "run",
            "fig7",
            "fig10",
            "--commits",
            "1234",
            "--seed",
            "9",
            "--format",
            "json",
            "--out",
            "results",
            "--jobs",
            "3",
            "--sequential",
        ]))
        .unwrap();
        let Command::Run(run) = cmd else {
            panic!("expected run");
        };
        assert_eq!(run.ids, vec!["fig7", "fig10"]);
        assert!(!run.all && !run.quick && run.sequential);
        assert_eq!(run.commits, Some(1234));
        assert_eq!(run.seed, Some(9));
        assert_eq!(run.format, OutputFormat::Json);
        assert_eq!(run.out, Some(PathBuf::from("results")));
        assert_eq!(run.jobs, Some(3));
    }

    #[test]
    fn parse_run_rejects_bad_usage() {
        assert!(parse(&args(&["run"])).is_err());
        assert!(parse(&args(&["run", "--all", "fig7"])).is_err());
        assert!(parse(&args(&["run", "--commits"])).is_err());
        assert!(parse(&args(&["run", "fig7", "--commits", "abc"])).is_err());
        assert!(parse(&args(&["run", "fig7", "--format", "xml"])).is_err());
        assert!(parse(&args(&["run", "fig7", "--jobs", "0"])).is_err());
        assert!(parse(&args(&["run", "fig7", "--bogus"])).is_err());
    }

    #[test]
    fn select_resolves_ids_and_rejects_unknown() {
        let mut run = parse_run(&args(&["fig7", "table2"])).unwrap();
        let selected = select_experiments(&run).unwrap();
        assert_eq!(selected.len(), 2);
        assert_eq!(selected[0].id(), "fig7");
        assert_eq!(selected[1].id(), "table2");
        run.ids.push("bogus".to_owned());
        let err = select_experiments(&run).err().expect("unknown id rejected");
        assert!(err.message.contains("unknown experiment `bogus`"));
        assert!(err.message.contains("fig7"));

        let all = parse_run(&args(&["--all"])).unwrap();
        assert_eq!(select_experiments(&all).unwrap().len(), registry().len());
    }

    #[test]
    fn effective_params_layering() {
        let fig8a = elsq_sim::experiments::find("fig8a").unwrap();
        let mut run = parse_run(&args(&["fig8a"])).unwrap();
        assert_eq!(effective_params(fig8a, &run), ExperimentParams::sweep());
        run.quick = true;
        assert_eq!(effective_params(fig8a, &run), ExperimentParams::quick());
        run.commits = Some(777);
        run.seed = Some(5);
        let p = effective_params(fig8a, &run);
        assert_eq!((p.commits, p.seed), (777, 5));
    }

    #[test]
    fn list_covers_every_registered_experiment() {
        let listing = list_output();
        for e in registry() {
            assert!(
                listing.lines().any(|l| l.starts_with(e.id())),
                "{} missing from list output",
                e.id()
            );
        }
        assert_eq!(listing.lines().count(), registry().len());
    }

    #[test]
    fn parse_bench_flags() {
        let cmd = parse(&args(&[
            "bench",
            "--quick",
            "--commits",
            "900",
            "--seed",
            "3",
            "--label",
            "PR3",
            "--out",
            "bench.json",
            "--format",
            "json",
            "--check",
            "BENCH_PR3.json",
            "--max-regress",
            "40",
            "--trace",
            "traces/",
        ]))
        .unwrap();
        let Command::Bench(b) = cmd else {
            panic!("expected bench");
        };
        assert!(b.quick);
        assert_eq!(b.commits, Some(900));
        assert_eq!(b.seed, Some(3));
        assert_eq!(b.label.as_deref(), Some("PR3"));
        assert_eq!(b.out, Some(PathBuf::from("bench.json")));
        assert_eq!(b.format, OutputFormat::Json);
        assert_eq!(b.check, Some(PathBuf::from("BENCH_PR3.json")));
        assert!((b.max_regress - 0.40).abs() < 1e-12);
        assert_eq!(b.trace, Some(PathBuf::from("traces/")));
    }

    #[test]
    fn parse_bench_rejects_bad_usage() {
        assert!(parse(&args(&["bench", "--format", "csv"])).is_err());
        assert!(parse(&args(&["bench", "--max-regress", "150"])).is_err());
        assert!(parse(&args(&["bench", "stray"])).is_err());
        let Command::Bench(b) = parse(&args(&["bench"])).unwrap() else {
            panic!("bare bench parses");
        };
        assert!((b.max_regress - 0.30).abs() < 1e-12);
        assert_eq!(b.format, OutputFormat::Text);
    }

    #[test]
    fn parse_sample_flag_on_every_verb() {
        let Command::Run(run) = parse(&args(&["run", "fig7", "--sample", "1000:100:50"])).unwrap()
        else {
            panic!("expected run");
        };
        assert_eq!(run.sample, Some(SamplingSpec::new(1000, 100, 50).unwrap()));
        let Command::Sweep(s) = parse(&args(&[
            "sweep", "--axis", "rob=64", "--sample", "2000:200",
        ]))
        .unwrap() else {
            panic!("expected sweep");
        };
        assert_eq!(s.sample, Some(SamplingSpec::new(2000, 200, 0).unwrap()));
        let Command::Bench(b) = parse(&args(&["bench", "--sample", "1000:100"])).unwrap() else {
            panic!("expected bench");
        };
        assert_eq!(b.sample, Some(SamplingSpec::new(1000, 100, 0).unwrap()));
        let Command::Submit(sub) = parse(&args(&[
            "submit", "--axis", "rob=48", "--sample", "1000:100",
        ]))
        .unwrap() else {
            panic!("expected submit");
        };
        assert!(sub.grid.sample.is_some());
        // The spec reaches the effective run/sweep parameters.
        let fig7 = elsq_sim::experiments::find("fig7").unwrap();
        assert_eq!(effective_params(fig7, &run).sample, run.sample);
        assert_eq!(sweep_spec(&s).unwrap().params.sample, s.sample);
    }

    #[test]
    fn parse_sample_rejects_malformed_specs_loudly() {
        // Malformed specs exit 2 with a usage dump before anything runs.
        for bad in ["1000", "0:100", "100:0", "1000:900:200", "a:b", "1:2:3:4"] {
            let err = parse(&args(&["run", "fig7", "--sample", bad])).unwrap_err();
            assert_eq!(err.exit_code, 2, "`{bad}` accepted");
            assert!(err.show_usage, "`{bad}` skipped the usage dump");
            assert!(err.message.contains("--sample"), "`{bad}`: {}", err.message);
        }
        assert!(parse(&args(&["run", "fig7", "--sample"])).is_err());
        assert!(parse(&args(&["sweep", "--axis", "rob=64", "--sample", "10:20"])).is_err());
    }

    #[test]
    fn parse_trace_dump_checkpoint_every() {
        let Command::Trace(TraceCmd::Dump(dump)) = parse(&args(&[
            "trace",
            "dump",
            "fp",
            "--out",
            "t/",
            "--checkpoint-every",
            "512",
        ]))
        .unwrap() else {
            panic!("expected trace dump");
        };
        assert_eq!(dump.checkpoint_every, Some(512));
        let err = parse(&args(&[
            "trace",
            "dump",
            "fp",
            "--out",
            "t/",
            "--checkpoint-every",
            "0",
        ]))
        .unwrap_err();
        assert_eq!(err.exit_code, 2);
        assert!(
            err.message.contains("--checkpoint-every"),
            "{}",
            err.message
        );
        assert!(parse(&args(&["trace", "dump", "--checkpoint-every"])).is_err());
    }

    #[test]
    fn parse_diff_flags_and_arity() {
        let Command::Diff(d) =
            parse(&args(&["diff", "a.json", "b.json", "--tol", "0.01"])).unwrap()
        else {
            panic!("expected diff");
        };
        assert_eq!(d.a, PathBuf::from("a.json"));
        assert_eq!(d.b, PathBuf::from("b.json"));
        assert!((d.tol - 0.01).abs() < 1e-12);
        assert!(parse(&args(&["diff", "a.json"])).is_err());
        assert!(parse(&args(&["diff", "a", "b", "c"])).is_err());
        assert!(parse(&args(&["diff", "a", "b", "--tol", "-1"])).is_err());
        assert!(parse(&args(&["diff", "a", "b", "--bogus"])).is_err());
    }

    #[test]
    fn diff_end_to_end_matches_and_mismatches() {
        let dir = std::env::temp_dir().join(format!("elsq-diff-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let run = parse_run(&args(&["tuning", "--quick", "--commits", "500"])).unwrap();
        let reports = execute_run(&run).unwrap();
        let json = render_reports(&reports, OutputFormat::Json);
        let a = dir.join("a.json");
        let b = dir.join("b.json");
        std::fs::write(&a, &json).unwrap();
        std::fs::write(&b, &json).unwrap();
        let same = execute_diff(&DiffArgs {
            a: a.clone(),
            b: b.clone(),
            tol: 0.0,
        })
        .unwrap();
        assert!(same.contains("reports match"));
        // Different params -> mismatch with exit code 1.
        let run2 = parse_run(&args(&["tuning", "--quick", "--commits", "700"])).unwrap();
        let reports2 = execute_run(&run2).unwrap();
        std::fs::write(&b, render_reports(&reports2, OutputFormat::Json)).unwrap();
        let err = execute_diff(&DiffArgs { a, b, tol: 0.0 }).unwrap_err();
        assert_eq!(err.exit_code, 1);
        assert!(err.message.contains("reports differ"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn diff_refuses_degraded_reports_with_exit_3() {
        let dir = tmp_dir("diff-degraded");
        // A sweep-style report whose one point failed: the diff must refuse
        // it loudly instead of matching the two FAILED markers.
        let degraded = r#"{
            "id": "sweep-x", "title": "x",
            "params": {"commits": 100, "seed": 1},
            "tables": [{
                "title": "grid",
                "headers": ["point", "suite", "mean IPC"],
                "rows": [[
                    {"text": "rob=48", "value": null},
                    {"text": "fp", "value": null},
                    {"text": "FAILED (lsq-alloc)", "value": null}
                ]]
            }],
            "wall_time_ms": 0.0
        }"#;
        let a = dir.join("a.json");
        let b = dir.join("b.json");
        std::fs::write(&a, degraded).unwrap();
        std::fs::write(&b, degraded).unwrap();
        let err = execute_diff(&DiffArgs {
            a: a.clone(),
            b,
            tol: 0.0,
        })
        .unwrap_err();
        assert_eq!(err.exit_code, EXIT_DEGRADED);
        assert!(!err.show_usage);
        assert!(
            err.message.contains("refusing to compare"),
            "{}",
            err.message
        );
        assert!(
            err.message.contains("FAILED (lsq-alloc)"),
            "{}",
            err.message
        );
        assert!(
            err.message.contains(&a.display().to_string()),
            "{}",
            err.message
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parse_test_flags_and_usage_errors() {
        let Command::Test(t) = parse(&args(&[
            "test",
            "suites/",
            "extra.json",
            "--cache",
            "c/",
            "--resume",
            "--jobs",
            "2",
            "--format",
            "json",
            "--out",
            "report.json",
        ]))
        .unwrap() else {
            panic!("expected test");
        };
        assert_eq!(
            t.paths,
            vec![PathBuf::from("suites/"), PathBuf::from("extra.json")]
        );
        assert_eq!(t.cache, Some(PathBuf::from("c/")));
        assert!(t.resume);
        assert_eq!(t.jobs, Some(2));
        assert_eq!(t.format, OutputFormat::Json);
        assert_eq!(t.out, Some(PathBuf::from("report.json")));
        // Usage errors exit 2 before anything runs.
        assert!(parse(&args(&["test"])).is_err());
        assert!(parse(&args(&["test", "suites/", "--format", "csv"])).is_err());
        assert!(parse(&args(&["test", "suites/", "--resume"])).is_err());
        assert!(parse(&args(&["test", "suites/", "--jobs", "0"])).is_err());
        assert!(parse(&args(&["test", "suites/", "--bogus"])).is_err());
    }

    /// A tiny scenario-target suite (two grid points, 300 commits) whose
    /// bound holds; `violated` flips the bound to a knowingly false trend.
    fn tiny_suite_json(violated: bool) -> String {
        let bound = if violated {
            r#""column": "mean IPC", "max": 0.000001"#
        } else {
            r#""column": "mean IPC", "min": 0.000001"#
        };
        format!(
            r#"{{
                "name": "cli-tiny",
                "scenario": {{
                    "name": "cli-tiny",
                    "base": "fmc-hash",
                    "axes": [{{"name": "rob", "values": ["48", "64"]}}],
                    "classes": ["fp"],
                    "params": {{"commits": 300, "seed": 5}}
                }},
                "assertions": [
                    {{"name": "ipc-sane", "kind": "bound", {bound}}}
                ]
            }}"#
        )
    }

    #[test]
    fn test_verb_end_to_end_with_cache_round_trip() {
        let dir = tmp_dir("test-verb");
        std::fs::write(dir.join("tiny.json"), tiny_suite_json(false)).unwrap();
        let cache = dir.join("cache");
        let invoke = |resume: bool| {
            let mut test = parse_test(&args(&[
                dir.to_str().unwrap(),
                "--cache",
                cache.to_str().unwrap(),
            ]))
            .unwrap();
            test.resume = resume;
            execute_test(&test).unwrap()
        };
        let first = invoke(false);
        assert_eq!(first.exit_code(), 0);
        assert_eq!(first.suites.len(), 1);
        assert_eq!(first.suites[0].status(), Status::Pass);
        assert_eq!(first.suites[0].source, "tiny.json");
        let line = first.cache_line.as_deref().unwrap();
        assert!(line.contains("0 hit(s), 2 miss(es)"), "{line}");
        // Second run against the same cache: zero simulations, and the
        // summary line says so (what the CI job greps for).
        let second = invoke(true);
        assert_eq!(second.exit_code(), 0);
        let line = second.cache_line.as_deref().unwrap();
        assert!(line.contains("2 hit(s), 0 miss(es)"), "{line}");
        assert!(line.contains("100% cache hits"), "{line}");
        let text = render_test_text(&second);
        assert!(text.contains("PASS ipc-sane"), "{text}");
        assert!(text.contains("suite cli-tiny (tiny.json)"), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn test_verb_violated_bound_exits_1_naming_the_assertion() {
        let dir = tmp_dir("test-verb-fail");
        let file = dir.join("false-trend.json");
        std::fs::write(&file, tiny_suite_json(true)).unwrap();
        let out_file = dir.join("report.json");
        let run = run_cli(&args(&[
            "test",
            file.to_str().unwrap(),
            "--out",
            out_file.to_str().unwrap(),
        ]))
        .unwrap();
        assert_eq!(run.exit_code, 1);
        assert!(run.output.contains("FAIL ipc-sane"), "{}", run.output);
        assert!(
            run.output.contains("1 failed assertion(s)"),
            "{}",
            run.output
        );
        // The --out JSON artifact carries the same verdicts.
        let json = std::fs::read_to_string(&out_file).unwrap();
        assert!(
            json.contains("\"status\": \"fail\"") || json.contains("\"status\":\"fail\""),
            "{json}"
        );
        assert!(json.contains("ipc-sane"), "{json}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn test_verb_rejects_malformed_suites_and_empty_dirs() {
        let dir = tmp_dir("test-verb-bad");
        // Empty directory: vacuous passes are forbidden.
        let err = execute_test(&parse_test(&args(&[dir.to_str().unwrap()])).unwrap()).unwrap_err();
        assert_eq!(err.exit_code, 1);
        assert!(
            err.message.contains("no .json suite files"),
            "{}",
            err.message
        );
        // Missing path.
        let missing = dir.join("absent.json");
        let err =
            execute_test(&parse_test(&args(&[missing.to_str().unwrap()])).unwrap()).unwrap_err();
        assert!(err.message.contains("no such suite"), "{}", err.message);
        // Malformed suite file: named, with the parse error, before any
        // simulation runs.
        let bad = dir.join("bad.json");
        std::fs::write(
            &bad,
            r#"{"name": "x", "experiment": "fig7", "asertions": []}"#,
        )
        .unwrap();
        let err = execute_test(&parse_test(&args(&[bad.to_str().unwrap()])).unwrap()).unwrap_err();
        assert_eq!(err.exit_code, 1);
        assert!(
            err.message.contains("is not a suite file"),
            "{}",
            err.message
        );
        assert!(
            err.message.contains("unknown key `asertions`"),
            "{}",
            err.message
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bench_check_rejects_mismatched_budget_baseline() {
        let dir = std::env::temp_dir().join(format!("elsq-bench-budget-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("base.json");
        let base = BenchArgs {
            quick: false,
            commits: Some(200),
            seed: Some(7),
            label: None,
            out: Some(out.clone()),
            format: OutputFormat::Json,
            check: None,
            max_regress: 0.30,
            trace: None,
            sample: None,
        };
        execute_bench(&base).unwrap();
        // Same seed, different commit budget: rates are not comparable.
        let err = execute_bench(&BenchArgs {
            commits: Some(400),
            check: Some(out),
            out: None,
            ..base
        })
        .unwrap_err();
        assert_eq!(err.exit_code, 1);
        assert!(err.message.contains("not comparable"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bench_end_to_end_writes_and_checks() {
        let dir = std::env::temp_dir().join(format!("elsq-bench-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("bench.json");
        let bench = BenchArgs {
            quick: false,
            commits: Some(200),
            seed: Some(7),
            label: None,
            out: Some(out.clone()),
            format: OutputFormat::Json,
            check: None,
            max_regress: 0.30,
            trace: None,
            sample: None,
        };
        let output = execute_bench(&bench).unwrap();
        assert!(output.contains("minst_per_sec"));
        assert!(out.exists());
        // JSON mode keeps stdout pure JSON (no "wrote ..." trailer).
        let parsed: crate::bench::BenchReport = serde_json::from_str(&output).unwrap();
        assert_eq!(parsed.cases.len(), 7);
        // A fresh run checked against its own numbers passes (a near-100%
        // threshold keeps the tiny 200-commit run immune to timer noise on a
        // loaded test host; CI uses the real budget with the default 30%).
        let checked = execute_bench(&BenchArgs {
            check: Some(out.clone()),
            out: None,
            format: OutputFormat::Text,
            max_regress: 0.95,
            ..bench
        })
        .unwrap();
        assert!(checked.contains("throughput check passed"));
        std::fs::remove_dir_all(&dir).ok();
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "elsq-cli-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn parse_show() {
        assert_eq!(
            parse(&args(&["show", "fig7"])).unwrap(),
            Command::Show("fig7".to_owned())
        );
        assert!(parse(&args(&["show"])).is_err());
        assert!(parse(&args(&["show", "a", "b"])).is_err());
    }

    #[test]
    fn show_prints_params_and_grid_and_rejects_unknown_ids() {
        let json = execute_show("fig7").unwrap();
        let value = serde_json::parse_value(&json).unwrap();
        assert_eq!(value.get("id"), Some(&serde::Value::Str("fig7".into())));
        let plan = value.get("plan").expect("plan present");
        let points = match plan.get("points") {
            Some(serde::Value::Seq(points)) => points,
            other => panic!("points missing: {other:?}"),
        };
        // Baseline + 5 schemes, both classes.
        assert_eq!(points.len(), 12);
        // The grid carries full configs a scenario author can copy.
        assert!(json.contains("rob_size"));
        let err = execute_show("bogus").unwrap_err();
        assert_eq!(err.exit_code, 2);
        assert!(err.message.contains("unknown experiment"));
    }

    #[test]
    fn parse_sweep_flags() {
        let cmd = parse(&args(&[
            "sweep",
            "--axis",
            "rob=64,128",
            "--axis",
            "sqm=on,off",
            "--base",
            "fmc-hash",
            "--classes",
            "fp",
            "--name",
            "demo",
            "--commits",
            "2000",
            "--seed",
            "9",
            "--cache",
            "cachedir",
            "--resume",
            "--format",
            "json",
            "--out",
            "outdir",
            "--jobs",
            "2",
        ]))
        .unwrap();
        let Command::Sweep(s) = cmd else {
            panic!("expected sweep");
        };
        assert_eq!(s.axes.len(), 2);
        assert_eq!(s.axes[0].name, "rob");
        assert_eq!(s.axes[0].values, vec!["64", "128"]);
        assert_eq!(s.base.as_deref(), Some("fmc-hash"));
        assert_eq!(s.classes.as_deref(), Some("fp"));
        assert_eq!(s.name.as_deref(), Some("demo"));
        assert_eq!((s.commits, s.seed), (Some(2000), Some(9)));
        assert_eq!(s.cache, Some(PathBuf::from("cachedir")));
        assert!(s.resume);
        assert_eq!(s.format, OutputFormat::Json);
        assert_eq!(s.out, Some(PathBuf::from("outdir")));
        assert_eq!(s.jobs, Some(2));
    }

    #[test]
    fn parse_sweep_rejects_malformed_axis_specs_and_conflicts() {
        // Malformed --axis specs fail loudly at parse time (exit 2).
        for bad in ["rob", "rob=", "=64", "rob=64,,128", "rob=64,"] {
            let err = parse(&args(&["sweep", "--axis", bad])).unwrap_err();
            assert_eq!(err.exit_code, 2, "`{bad}` accepted");
            assert!(
                err.message.contains("malformed"),
                "`{bad}`: {}",
                err.message
            );
        }
        // No grid at all.
        assert!(parse(&args(&["sweep"])).is_err());
        // --scenario conflicts with the ad-hoc flags.
        let err = parse(&args(&[
            "sweep",
            "--scenario",
            "s.json",
            "--axis",
            "rob=64",
        ]))
        .unwrap_err();
        assert!(err.message.contains("conflicts"), "{}", err.message);
        // --resume needs --cache.
        let err = parse(&args(&["sweep", "--axis", "rob=64", "--resume"])).unwrap_err();
        assert!(err.message.contains("--cache"), "{}", err.message);
        // Unknown class selection is rejected when the spec is built.
        let Command::Sweep(s) = parse(&args(&[
            "sweep",
            "--axis",
            "rob=64",
            "--classes",
            "spec2006",
        ]))
        .unwrap() else {
            panic!("expected sweep");
        };
        assert_eq!(sweep_spec(&s).unwrap_err().exit_code, 2);
        // An unknown axis *name* is rejected at expansion.
        let Command::Sweep(s) = parse(&args(&["sweep", "--axis", "bogus=1"])).unwrap() else {
            panic!("expected sweep");
        };
        let err = execute_sweep(&s).unwrap_err();
        assert_eq!(err.exit_code, 2);
        assert!(err.message.contains("unknown axis"), "{}", err.message);
        // So is the same axis passed twice — never a silent last-one-wins.
        let Command::Sweep(s) =
            parse(&args(&["sweep", "--axis", "rob=48", "--axis", "rob=64"])).unwrap()
        else {
            panic!("expected sweep");
        };
        let err = execute_sweep(&s).unwrap_err();
        assert_eq!(err.exit_code, 2);
        assert!(err.message.contains("declared twice"), "{}", err.message);
    }

    #[test]
    fn parse_serve_flags_and_loud_usage_errors() {
        let Command::Serve(s) = parse(&args(&[
            "serve",
            "--store",
            "storedir",
            "--addr",
            "127.0.0.1:0",
            "--resume",
            "--jobs",
            "2",
        ]))
        .unwrap() else {
            panic!("expected serve");
        };
        assert_eq!(s.store, PathBuf::from("storedir"));
        assert_eq!(s.addr, "127.0.0.1:0");
        assert!(s.resume);
        assert_eq!(s.jobs, Some(2));
        // Missing --store is a loud usage error (exit 2), not a default.
        let err = parse(&args(&["serve"])).unwrap_err();
        assert_eq!(err.exit_code, 2);
        assert!(err.message.contains("--store"), "{}", err.message);
        let err = parse(&args(&["serve", "--resume"])).unwrap_err();
        assert_eq!(err.exit_code, 2);
        assert!(err.message.contains("--store"), "{}", err.message);
        // `serve --cache` points at the right flag.
        let err = parse(&args(&["serve", "--cache", "dir"])).unwrap_err();
        assert_eq!(err.exit_code, 2);
        assert!(err.message.contains("--store"), "{}", err.message);
        assert!(parse(&args(&["serve", "--store"])).is_err());
        assert!(parse(&args(&["serve", "--store", "d", "--jobs", "0"])).is_err());
        assert!(parse(&args(&["serve", "--store", "d", "stray"])).is_err());
    }

    #[test]
    fn parse_submit_flags_and_loud_usage_errors() {
        let Command::Submit(s) = parse(&args(&[
            "submit",
            "--connect",
            "127.0.0.1:9",
            "--job",
            "night-1",
            "--axis",
            "rob=48,64",
            "--base",
            "fmc-hash",
            "--classes",
            "fp",
            "--name",
            "demo",
            "--commits",
            "400",
            "--seed",
            "5",
            "--format",
            "json",
        ]))
        .unwrap() else {
            panic!("expected submit");
        };
        assert_eq!(s.connect, "127.0.0.1:9");
        assert_eq!(s.job.as_deref(), Some("night-1"));
        assert_eq!(s.grid.axes.len(), 1);
        assert_eq!(s.grid.base.as_deref(), Some("fmc-hash"));
        assert_eq!((s.grid.commits, s.grid.seed), (Some(400), Some(5)));
        // The default address is the daemon default.
        let Command::Submit(s) = parse(&args(&["submit", "--axis", "rob=48"])).unwrap() else {
            panic!("expected submit");
        };
        assert_eq!(s.connect, elsq_serve::protocol::DEFAULT_ADDR);
        // No grid at all.
        let err = parse(&args(&["submit"])).unwrap_err();
        assert_eq!(err.exit_code, 2);
        assert!(err.message.contains("no grid selected"), "{}", err.message);
        // The cache flags belong to the server.
        for flag in ["--cache", "--resume"] {
            let cmd = if flag == "--cache" {
                args(&["submit", "--axis", "rob=48", flag, "dir"])
            } else {
                args(&["submit", "--axis", "rob=48", flag])
            };
            let err = parse(&cmd).unwrap_err();
            assert_eq!(err.exit_code, 2, "{flag}");
            assert!(err.message.contains("daemon owns"), "{}", err.message);
        }
        // A bad job id fails at parse time, before connecting anywhere.
        let err = parse(&args(&["submit", "--axis", "rob=48", "--job", "a.b"])).unwrap_err();
        assert_eq!(err.exit_code, 2);
        assert!(err.message.contains("a.b"), "{}", err.message);
        // --scenario conflicts with ad-hoc grid flags, exactly like sweep.
        let err = parse(&args(&[
            "submit",
            "--scenario",
            "s.json",
            "--axis",
            "rob=48",
        ]))
        .unwrap_err();
        assert!(err.message.contains("conflicts"), "{}", err.message);
    }

    #[test]
    fn parse_jobs_and_shutdown() {
        assert_eq!(
            parse(&args(&["jobs"])).unwrap(),
            Command::Jobs(ConnectArgs {
                connect: elsq_serve::protocol::DEFAULT_ADDR.to_owned(),
                timeout: DEFAULT_CLIENT_TIMEOUT_SECS,
                now: false,
            })
        );
        assert_eq!(
            parse(&args(&["shutdown", "--connect", "127.0.0.1:7", "--now"])).unwrap(),
            Command::Shutdown(ConnectArgs {
                connect: "127.0.0.1:7".to_owned(),
                timeout: DEFAULT_CLIENT_TIMEOUT_SECS,
                now: true,
            })
        );
        // --timeout is parsed (0 = disabled); --now belongs to shutdown only.
        let Command::Jobs(j) = parse(&args(&["jobs", "--timeout", "5"])).unwrap() else {
            panic!("expected jobs");
        };
        assert_eq!(j.timeout, 5);
        assert!(parse(&args(&["jobs", "--now"])).is_err());
        assert!(parse(&args(&["jobs", "stray"])).is_err());
        assert!(parse(&args(&["shutdown", "--connect"])).is_err());
        assert!(parse(&args(&["shutdown", "--timeout", "abc"])).is_err());
    }

    #[test]
    fn submit_against_no_server_is_a_runtime_error() {
        // Port 9 on localhost is reserved/discard and not listening here.
        let err = main_with_args(&args(&[
            "submit",
            "--connect",
            "127.0.0.1:9",
            "--axis",
            "rob=48",
            "--quick",
        ]))
        .unwrap_err();
        assert_eq!(err.exit_code, 1);
        assert!(err.message.contains("cannot connect"), "{}", err.message);
    }

    #[test]
    fn run_rejects_unknown_experiment_id_with_usage_error() {
        let err = main_with_args(&args(&["run", "frobnicate", "--quick"])).unwrap_err();
        assert_eq!(err.exit_code, 2);
        assert!(err.message.contains("unknown experiment `frobnicate`"));
        assert!(err.message.contains("fig7"), "lists known ids");
    }

    #[test]
    fn run_trace_on_missing_directory_fails_loudly() {
        let err = main_with_args(&args(&[
            "run",
            "tuning",
            "--quick",
            "--trace",
            "/nonexistent/elsq-traces",
        ]))
        .unwrap_err();
        assert_eq!(err.exit_code, 1);
        assert!(err.message.contains("--trace"), "{}", err.message);
    }

    #[test]
    fn sweep_resume_with_corrupted_manifest_fails_loudly() {
        let dir = tmp_dir("sweep-corrupt");
        let cache = dir.join("cache");
        std::fs::create_dir_all(&cache).unwrap();
        std::fs::write(cache.join("manifest.json"), "{definitely not json").unwrap();
        let sweep = SweepArgs {
            scenario: None,
            axes: vec![Axis {
                name: "rob".into(),
                values: vec!["48".into(), "64".into()],
            }],
            base: None,
            classes: Some("fp".into()),
            name: None,
            quick: false,
            commits: Some(300),
            seed: Some(7),
            cache: Some(cache.clone()),
            resume: true,
            format: OutputFormat::Json,
            out: None,
            jobs: None,
            trace: None,
            no_batch: false,
            fault_plan: None,
            sample: None,
        };
        let err = execute_sweep(&sweep).unwrap_err();
        assert_eq!(err.exit_code, 1);
        assert!(err.message.contains("corrupt"), "{}", err.message);
        // Nothing was recomputed or overwritten behind the error.
        assert_eq!(
            std::fs::read_to_string(cache.join("manifest.json")).unwrap(),
            "{definitely not json"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sweep_cache_round_trip_is_all_hits_and_byte_identical() {
        let dir = tmp_dir("sweep-cache");
        let sweep = SweepArgs {
            scenario: None,
            axes: vec![Axis {
                name: "rob".into(),
                values: vec!["48".into(), "64".into()],
            }],
            base: Some("fmc-hash".into()),
            classes: Some("fp".into()),
            name: Some("demo".into()),
            quick: false,
            commits: Some(400),
            seed: Some(5),
            cache: Some(dir.join("cache")),
            resume: false,
            format: OutputFormat::Json,
            out: None,
            jobs: None,
            trace: None,
            no_batch: false,
            fault_plan: None,
            sample: None,
        };
        let first = execute_sweep(&sweep).unwrap();
        assert_eq!(first.cache, Some((0, 2)), "fresh cache misses everything");
        // Re-running without --resume refuses the populated cache.
        let err = execute_sweep(&sweep).unwrap_err();
        assert!(err.message.contains("--resume"), "{}", err.message);
        let second = execute_sweep(&SweepArgs {
            resume: true,
            ..sweep.clone()
        })
        .unwrap();
        assert_eq!(second.cache, Some((2, 0)), "second run is 100% cache hits");
        assert_eq!(
            render_report(&second.report, OutputFormat::Json),
            render_report(&first.report, OutputFormat::Json),
            "cached report must be byte-identical"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sweep_no_batch_is_byte_identical_to_batched() {
        let sweep = SweepArgs {
            scenario: None,
            axes: vec![
                Axis {
                    name: "rob".into(),
                    values: vec!["48".into(), "64".into()],
                },
                Axis {
                    name: "issue".into(),
                    values: vec!["2".into(), "4".into()],
                },
            ],
            base: Some("fmc-hash".into()),
            classes: Some("both".into()),
            name: Some("batchparity".into()),
            quick: false,
            commits: Some(400),
            seed: Some(5),
            cache: None,
            resume: false,
            format: OutputFormat::Json,
            out: None,
            jobs: None,
            trace: None,
            no_batch: false,
            fault_plan: None,
            sample: None,
        };
        let batched = execute_sweep(&sweep).unwrap();
        let each = execute_sweep(&SweepArgs {
            no_batch: true,
            ..sweep
        })
        .unwrap();
        assert_eq!(
            render_report(&batched.report, OutputFormat::Json),
            render_report(&each.report, OutputFormat::Json),
            "--no-batch must not change a single byte of the report"
        );
    }

    #[test]
    fn sweep_from_scenario_file_matches_adhoc_flags() {
        let dir = tmp_dir("sweep-file");
        let spec = ScenarioSpec {
            name: "filecase".into(),
            base: "fmc-hash-sqm".into(),
            axes: vec![Axis {
                name: "l2mb".into(),
                values: vec!["1".into(), "4".into()],
            }],
            classes: vec![WorkloadClass::Fp],
            params: ExperimentParams {
                commits: 400,
                seed: 5,
                sample: None,
            },
        };
        let path = dir.join("scenario.json");
        std::fs::write(&path, serde_json::to_string_pretty(&spec).unwrap()).unwrap();
        let from_file = execute_sweep(&SweepArgs {
            scenario: Some(path.clone()),
            axes: vec![],
            base: None,
            classes: None,
            name: None,
            quick: false,
            commits: None,
            seed: None,
            cache: None,
            resume: false,
            format: OutputFormat::Json,
            out: None,
            jobs: None,
            trace: None,
            no_batch: false,
            fault_plan: None,
            sample: None,
        })
        .unwrap();
        assert_eq!(from_file.report.id, "sweep-filecase");
        assert_eq!(from_file.report.params.commits, 400);
        let table = &from_file.report.tables[0];
        assert_eq!(table.len(), 2);
        assert_eq!(table.headers(), ["l2mb", "suite", "mean IPC"]);
        // A file that is not a scenario is a loud runtime error.
        std::fs::write(&path, "[1, 2, 3]").unwrap();
        let err = execute_sweep(&SweepArgs {
            scenario: Some(path),
            axes: vec![],
            base: None,
            classes: None,
            name: None,
            quick: false,
            commits: None,
            seed: None,
            cache: None,
            resume: false,
            format: OutputFormat::Json,
            out: None,
            jobs: None,
            trace: None,
            no_batch: false,
            fault_plan: None,
            sample: None,
        })
        .unwrap_err();
        assert_eq!(err.exit_code, 1);
        assert!(
            err.message.contains("not a scenario file"),
            "{}",
            err.message
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_renders_in_every_format() {
        let run = parse_run(&args(&["tuning", "--quick", "--commits", "600"])).unwrap();
        let reports = execute_run(&run).unwrap();
        assert_eq!(reports.len(), 1);
        let text = render_reports(&reports, OutputFormat::Text);
        assert!(text.contains("== Section 5.2"));
        let csv = render_reports(&reports, OutputFormat::Csv);
        assert!(csv.starts_with("# Section 5.2"));
        let json = render_reports(&reports, OutputFormat::Json);
        let back: Vec<elsq_stats::report::Report> = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].id, "tuning");
        assert_eq!(back[0].params.commits, 600);
    }
}
