//! The `elsq-lab` command line: list and run registered experiments.
//!
//! The CLI discovers experiments exclusively through
//! [`elsq_sim::experiments::registry`], so every subcommand works unchanged
//! when a new experiment module registers itself. Parsing and execution are
//! plain functions over argument slices so the unit tests can drive them
//! without a subprocess; the `elsq-lab` binary is a thin wrapper.
//!
//! ```text
//! elsq-lab list
//! elsq-lab run fig7 fig10 --commits 60000 --seed 7 --format json --out results/
//! elsq-lab run --all --quick
//! ```

use std::fmt;
use std::path::PathBuf;

use elsq_sim::experiments::{registry, run_experiments, Experiment};
use elsq_stats::report::{ExperimentParams, Report};

use crate::bench::{
    baseline_from_value, check_against_baseline, default_out_path, run_bench, BenchParams,
    BENCH_COMMITS, BENCH_COMMITS_QUICK, BENCH_SEED,
};
use crate::diff::{diff_reports, parse_reports};
use crate::trace::{TraceCmd, TraceDumpArgs, TraceFileArgs};

/// Usage text printed by `elsq-lab help` and on parse errors.
pub const USAGE: &str = "\
elsq-lab — registry-driven experiment runner for the ELSQ reproduction

USAGE:
    elsq-lab list                 list registered experiments
    elsq-lab run [IDS...] [OPTS]  run experiments by id
    elsq-lab bench [OPTS]         measure simulator throughput
    elsq-lab diff A.json B.json [--tol REL]
                                  compare two report files cell-by-cell
    elsq-lab trace dump [WORKLOADS...] --out DIR [OPTS]
                                  record workloads to .etrc trace files
    elsq-lab trace info FILE...   print trace provenance and block stats
    elsq-lab trace verify FILE... fully decode traces, checking every CRC
    elsq-lab help                 show this help

RUN OPTIONS:
    --all              run every registered experiment
    --quick            use the quick parameter preset (5k commits)
    --commits N        override committed instructions per workload
    --seed N           override the workload generator seed
    --format FORMAT    text | csv | json (default: text)
    --out DIR          write one file per experiment into DIR
    --jobs N           cap worker threads per fan-out level (sets
                       ELSQ_THREADS; nested suite fan-outs budget
                       separately, so total live threads can exceed N —
                       --jobs 1 is exactly sequential)
    --sequential       run experiments one after another (suites still
                       parallel); with --jobs 1, fully sequential
    --trace DIR        replay recorded .etrc traces from DIR (written by
                       `trace dump`) instead of running the generators;
                       the dump's seed must match and its per-workload
                       instruction count must cover the commit budget

TRACE DUMP OPTIONS:
    WORKLOADS          `both` (default), `fp`, `int`, or workload names
    --quick            record the quick preset (5k insts per workload)
    --commits N        instructions to record per workload (default 60k)
    --seed N           generator seed to record at (default 7)
    --out DIR          directory to write `.etrc` files into (required)

BENCH OPTIONS:
    --quick            5k commits per workload instead of 20k
    --commits N        override committed instructions per workload
    --seed N           override the workload generator seed
    --label NAME       report label; also writes BENCH_<NAME>.json
    --out FILE         write the JSON report to FILE (overrides --label path)
    --format FORMAT    text | json (default: text)
    --check FILE       compare against a baseline bench JSON (flat report
                       or a {before,after} trajectory file); exits non-zero
                       on regression
    --max-regress PCT  allowed per-case throughput drop for --check, in
                       percent (default: 30)

DIFF OPTIONS:
    --tol REL          relative tolerance for numeric cells (default: 0,
                       i.e. exact); text cells always compare exactly

Experiment ids map to paper artifacts; see docs/EXPERIMENTS.md.";

/// Output format of `elsq-lab run`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputFormat {
    /// Aligned plain-text tables.
    Text,
    /// RFC-4180 CSV, one `# title` comment per table.
    Csv,
    /// A JSON array of structured reports.
    Json,
}

impl OutputFormat {
    fn parse(s: &str) -> Result<Self, CliError> {
        match s {
            "text" => Ok(Self::Text),
            "csv" => Ok(Self::Csv),
            "json" => Ok(Self::Json),
            other => Err(CliError::usage(format!(
                "unknown format `{other}` (expected text, csv or json)"
            ))),
        }
    }

    fn extension(self) -> &'static str {
        match self {
            Self::Text => "txt",
            Self::Csv => "csv",
            Self::Json => "json",
        }
    }
}

/// Parsed `elsq-lab run` arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunArgs {
    /// Experiment ids to run (empty only with `--all`).
    pub ids: Vec<String>,
    /// Run every registered experiment.
    pub all: bool,
    /// Use the quick preset instead of each experiment's default.
    pub quick: bool,
    /// Override the commit budget.
    pub commits: Option<u64>,
    /// Override the workload seed.
    pub seed: Option<u64>,
    /// Output format.
    pub format: OutputFormat,
    /// Output directory (one file per experiment) instead of stdout.
    pub out: Option<PathBuf>,
    /// Worker-thread cap (exported as `ELSQ_THREADS`).
    pub jobs: Option<usize>,
    /// Disable the experiment-level fan-out.
    pub sequential: bool,
    /// Replay recorded `.etrc` traces from this directory instead of
    /// running the generators.
    pub trace: Option<PathBuf>,
}

/// Parsed `elsq-lab bench` arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchArgs {
    /// Use the quick commit budget.
    pub quick: bool,
    /// Override the commit budget.
    pub commits: Option<u64>,
    /// Override the workload seed.
    pub seed: Option<u64>,
    /// Report label; also selects the default `BENCH_<label>.json` path.
    pub label: Option<String>,
    /// Explicit output file for the JSON report.
    pub out: Option<PathBuf>,
    /// Output format (text or json; csv is rejected at parse time).
    pub format: OutputFormat,
    /// Baseline file to compare against.
    pub check: Option<PathBuf>,
    /// Allowed per-case throughput regression for `--check`, as a fraction.
    pub max_regress: f64,
}

/// Parsed `elsq-lab diff` arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffArgs {
    /// First report file.
    pub a: PathBuf,
    /// Second report file.
    pub b: PathBuf,
    /// Relative tolerance for numeric cells.
    pub tol: f64,
}

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `elsq-lab list`
    List,
    /// `elsq-lab run ...`
    Run(RunArgs),
    /// `elsq-lab bench ...`
    Bench(BenchArgs),
    /// `elsq-lab diff a.json b.json`
    Diff(DiffArgs),
    /// `elsq-lab trace dump|info|verify ...`
    Trace(TraceCmd),
    /// `elsq-lab help` / `--help`
    Help,
}

/// CLI error: a message plus the process exit code to use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError {
    /// Human-readable description.
    pub message: String,
    /// Process exit code (2 = usage error, 1 = runtime error).
    pub exit_code: i32,
}

impl CliError {
    pub(crate) fn usage(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            exit_code: 2,
        }
    }

    pub(crate) fn runtime(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            exit_code: 1,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CliError {}

/// Parses the arguments following the binary name.
pub fn parse(args: &[String]) -> Result<Command, CliError> {
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        None | Some("help") | Some("--help") | Some("-h") => Ok(Command::Help),
        Some("list") => {
            if let Some(extra) = it.next() {
                return Err(CliError::usage(format!(
                    "unexpected argument `{extra}` after `list`"
                )));
            }
            Ok(Command::List)
        }
        Some("run") => parse_run(it.as_slice()).map(Command::Run),
        Some("bench") => parse_bench(it.as_slice()).map(Command::Bench),
        Some("diff") => parse_diff(it.as_slice()).map(Command::Diff),
        Some("trace") => parse_trace(it.as_slice()).map(Command::Trace),
        Some(other) => Err(CliError::usage(format!(
            "unknown subcommand `{other}`; try `elsq-lab help`"
        ))),
    }
}

fn parse_bench(args: &[String]) -> Result<BenchArgs, CliError> {
    let mut bench = BenchArgs {
        quick: false,
        commits: None,
        seed: None,
        label: None,
        out: None,
        format: OutputFormat::Text,
        check: None,
        max_regress: 0.30,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value_of = |flag: &str| -> Result<&String, CliError> {
            it.next()
                .ok_or_else(|| CliError::usage(format!("`{flag}` requires a value")))
        };
        match arg.as_str() {
            "--quick" => bench.quick = true,
            "--commits" => bench.commits = Some(parse_num(value_of("--commits")?, "--commits")?),
            "--seed" => bench.seed = Some(parse_num(value_of("--seed")?, "--seed")?),
            "--label" => bench.label = Some(value_of("--label")?.clone()),
            "--out" => bench.out = Some(PathBuf::from(value_of("--out")?)),
            "--format" => match OutputFormat::parse(value_of("--format")?)? {
                OutputFormat::Csv => {
                    return Err(CliError::usage("`bench` supports text or json, not csv"));
                }
                format => bench.format = format,
            },
            "--check" => bench.check = Some(PathBuf::from(value_of("--check")?)),
            "--max-regress" => {
                let pct: u64 = parse_num(value_of("--max-regress")?, "--max-regress")?;
                if pct > 100 {
                    return Err(CliError::usage("`--max-regress` must be 0..=100 percent"));
                }
                bench.max_regress = pct as f64 / 100.0;
            }
            other => {
                return Err(CliError::usage(format!(
                    "unexpected argument `{other}` for `bench`"
                )));
            }
        }
    }
    Ok(bench)
}

fn parse_diff(args: &[String]) -> Result<DiffArgs, CliError> {
    let mut files = Vec::new();
    let mut tol = 0.0f64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--tol" => {
                let value = it
                    .next()
                    .ok_or_else(|| CliError::usage("`--tol` requires a value"))?;
                tol = value
                    .parse::<f64>()
                    .ok()
                    .filter(|t| t.is_finite() && *t >= 0.0)
                    .ok_or_else(|| {
                        CliError::usage(format!("invalid tolerance `{value}` for `--tol`"))
                    })?;
            }
            flag if flag.starts_with('-') => {
                return Err(CliError::usage(format!("unknown option `{flag}`")));
            }
            file => files.push(PathBuf::from(file)),
        }
    }
    let [a, b] = files.as_slice() else {
        return Err(CliError::usage(
            "`diff` takes exactly two report files: elsq-lab diff a.json b.json",
        ));
    };
    Ok(DiffArgs {
        a: a.clone(),
        b: b.clone(),
        tol,
    })
}

fn parse_trace(args: &[String]) -> Result<TraceCmd, CliError> {
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("dump") => {
            let mut dump = TraceDumpArgs {
                workloads: Vec::new(),
                quick: false,
                commits: None,
                seed: None,
                out: PathBuf::new(),
            };
            let mut out = None;
            let mut it = it.as_slice().iter();
            while let Some(arg) = it.next() {
                let mut value_of = |flag: &str| -> Result<&String, CliError> {
                    it.next()
                        .ok_or_else(|| CliError::usage(format!("`{flag}` requires a value")))
                };
                match arg.as_str() {
                    "--quick" => dump.quick = true,
                    "--commits" => {
                        dump.commits = Some(parse_num(value_of("--commits")?, "--commits")?)
                    }
                    "--seed" => dump.seed = Some(parse_num(value_of("--seed")?, "--seed")?),
                    "--out" => out = Some(PathBuf::from(value_of("--out")?)),
                    flag if flag.starts_with('-') => {
                        return Err(CliError::usage(format!("unknown option `{flag}`")));
                    }
                    workload => dump.workloads.push(workload.to_owned()),
                }
            }
            dump.out = out.ok_or_else(|| {
                CliError::usage("`trace dump` requires `--out DIR` for the .etrc files")
            })?;
            // Selection semantics (suites vs individual names, no mixing)
            // are validated by `trace::execute_dump`, which owns them.
            Ok(TraceCmd::Dump(dump))
        }
        Some(sub @ ("info" | "verify")) => {
            let mut files = Vec::new();
            for arg in it {
                if arg.starts_with('-') {
                    return Err(CliError::usage(format!(
                        "unknown option `{arg}` for `trace {sub}`"
                    )));
                }
                files.push(PathBuf::from(arg));
            }
            if files.is_empty() {
                return Err(CliError::usage(format!(
                    "`trace {sub}` takes one or more .etrc files"
                )));
            }
            let files = TraceFileArgs { files };
            Ok(if sub == "info" {
                TraceCmd::Info(files)
            } else {
                TraceCmd::Verify(files)
            })
        }
        Some(other) => Err(CliError::usage(format!(
            "unknown trace subcommand `{other}`; expected dump, info or verify"
        ))),
        None => Err(CliError::usage(
            "`trace` needs a subcommand: dump, info or verify",
        )),
    }
}

fn parse_run(args: &[String]) -> Result<RunArgs, CliError> {
    let mut run = RunArgs {
        ids: Vec::new(),
        all: false,
        quick: false,
        commits: None,
        seed: None,
        format: OutputFormat::Text,
        out: None,
        jobs: None,
        sequential: false,
        trace: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value_of = |flag: &str| -> Result<&String, CliError> {
            it.next()
                .ok_or_else(|| CliError::usage(format!("`{flag}` requires a value")))
        };
        match arg.as_str() {
            "--all" => run.all = true,
            "--quick" => run.quick = true,
            "--sequential" => run.sequential = true,
            "--commits" => run.commits = Some(parse_num(value_of("--commits")?, "--commits")?),
            "--seed" => run.seed = Some(parse_num(value_of("--seed")?, "--seed")?),
            "--jobs" => {
                let n: u64 = parse_num(value_of("--jobs")?, "--jobs")?;
                if n == 0 {
                    return Err(CliError::usage("`--jobs` must be at least 1"));
                }
                run.jobs = Some(n as usize);
            }
            "--format" => run.format = OutputFormat::parse(value_of("--format")?)?,
            "--out" => run.out = Some(PathBuf::from(value_of("--out")?)),
            "--trace" => run.trace = Some(PathBuf::from(value_of("--trace")?)),
            flag if flag.starts_with('-') => {
                return Err(CliError::usage(format!("unknown option `{flag}`")));
            }
            id => run.ids.push(id.to_owned()),
        }
    }
    if run.all && !run.ids.is_empty() {
        return Err(CliError::usage(
            "pass either experiment ids or `--all`, not both",
        ));
    }
    if !run.all && run.ids.is_empty() {
        return Err(CliError::usage(
            "no experiments selected; pass ids or `--all` (see `elsq-lab list`)",
        ));
    }
    Ok(run)
}

fn parse_num(s: &str, flag: &str) -> Result<u64, CliError> {
    s.parse()
        .map_err(|_| CliError::usage(format!("invalid value `{s}` for `{flag}`")))
}

/// Resolves the experiments a run selects, in registry order for `--all`
/// and in command-line order otherwise.
pub fn select_experiments(run: &RunArgs) -> Result<Vec<&'static dyn Experiment>, CliError> {
    if run.all {
        return Ok(registry().to_vec());
    }
    run.ids
        .iter()
        .map(|id| {
            elsq_sim::experiments::find(id).ok_or_else(|| {
                let known: Vec<&str> = registry().iter().map(|e| e.id()).collect();
                CliError::usage(format!(
                    "unknown experiment `{id}`; known ids: {}",
                    known.join(", ")
                ))
            })
        })
        .collect()
}

/// The parameters one experiment runs with, after `--quick`, `--commits`
/// and `--seed` are applied on top of its default preset.
pub fn effective_params(experiment: &dyn Experiment, run: &RunArgs) -> ExperimentParams {
    let mut params = if run.quick {
        ExperimentParams::quick()
    } else {
        experiment.default_params()
    };
    if let Some(commits) = run.commits {
        params.commits = commits;
    }
    if let Some(seed) = run.seed {
        params.seed = seed;
    }
    params
}

/// Renders one report in the requested format.
pub fn render_report(report: &Report, format: OutputFormat) -> String {
    match format {
        OutputFormat::Text => report.render(),
        OutputFormat::Csv => report.to_csv(),
        OutputFormat::Json => {
            serde_json::to_string_pretty(report).expect("reports always serialize")
        }
    }
}

/// Renders a whole run (every report) for stdout in the requested format.
pub fn render_reports(reports: &[Report], format: OutputFormat) -> String {
    match format {
        OutputFormat::Json => {
            serde_json::to_string_pretty(&reports.to_vec()).expect("reports always serialize")
        }
        _ => {
            let mut out = String::new();
            for (i, report) in reports.iter().enumerate() {
                if i > 0 {
                    out.push('\n');
                }
                out.push_str(&render_report(report, format));
            }
            out
        }
    }
}

/// The `elsq-lab list` output: one line per experiment — id, default
/// preset, title — in registry order.
pub fn list_output() -> String {
    let mut out = String::new();
    let id_width = registry().iter().map(|e| e.id().len()).max().unwrap_or(0);
    for e in registry() {
        let p = e.default_params();
        out.push_str(&format!(
            "{:<id_width$}  commits={:<6} seed={}  {}\n",
            e.id(),
            p.commits,
            p.seed,
            e.title()
        ));
    }
    out
}

/// Executes a run and returns the produced reports (in selection order).
pub fn execute_run(run: &RunArgs) -> Result<Vec<Report>, CliError> {
    // The unit tests drive this function in-process and libtest runs them
    // in parallel; the `--trace` override installed below is process-global
    // and run_suite panics on a seed/budget mismatch against an installed
    // roster, so under test all runs are serialized — one test's override
    // window can then never observe another test's parameters.
    #[cfg(test)]
    let _serial = {
        static RUN_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        RUN_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    };
    let experiments = select_experiments(run)?;
    let jobs: Vec<(&'static dyn Experiment, ExperimentParams)> = experiments
        .into_iter()
        .map(|e| (e, effective_params(e, run)))
        .collect();
    // `--trace DIR`: load, verify and validate the recorded roster before
    // anything runs, then install it as the process-global workload source
    // for the duration of the run (the guard restores the generators).
    let _trace_guard = match &run.trace {
        Some(dir) => {
            let ids: Vec<_> = jobs
                .iter()
                .map(|(e, p)| (e.id(), e.classes(), *p))
                .collect();
            Some(crate::trace::install_roster(dir, &ids)?)
        }
        None => None,
    };
    // The pool reads ELSQ_THREADS at every fan-out, so `--jobs` caps each
    // level (experiments, and each suite inside one) rather than the whole
    // process — `--jobs 1` is exactly sequential, larger values are a
    // per-level budget. Set it before any worker spawns and restore the
    // previous value afterwards so the cap cannot leak into later
    // invocations from the same process (e.g. the in-process tests).
    let saved = run.jobs.map(|jobs| {
        let previous = std::env::var("ELSQ_THREADS").ok();
        std::env::set_var("ELSQ_THREADS", jobs.to_string());
        previous
    });
    let reports = run_experiments(jobs, !run.sequential);
    if let Some(previous) = saved {
        match previous {
            Some(value) => std::env::set_var("ELSQ_THREADS", value),
            None => std::env::remove_var("ELSQ_THREADS"),
        }
    }
    Ok(reports)
}

/// Writes per-experiment files into `--out DIR` and returns the summary
/// lines printed to stdout.
pub fn write_reports(
    reports: &[Report],
    dir: &std::path::Path,
    format: OutputFormat,
) -> Result<String, CliError> {
    std::fs::create_dir_all(dir)
        .map_err(|e| CliError::runtime(format!("cannot create {}: {e}", dir.display())))?;
    let mut summary = String::new();
    for report in reports {
        let path = dir.join(format!("{}.{}", report.id, format.extension()));
        std::fs::write(&path, render_report(report, format))
            .map_err(|e| CliError::runtime(format!("cannot write {}: {e}", path.display())))?;
        summary.push_str(&format!(
            "{}: {} table(s), {:.1} ms -> {}\n",
            report.id,
            report.tables.len(),
            report.wall_time_ms,
            path.display()
        ));
    }
    Ok(summary)
}

/// Executes a bench invocation: runs the roster, writes the JSON file when
/// `--label`/`--out` select one, and applies the `--check` comparison.
pub fn execute_bench(bench: &BenchArgs) -> Result<String, CliError> {
    let commits = bench.commits.unwrap_or(if bench.quick {
        BENCH_COMMITS_QUICK
    } else {
        BENCH_COMMITS
    });
    let params = BenchParams {
        commits,
        seed: bench.seed.unwrap_or(BENCH_SEED),
        label: bench.label.clone().unwrap_or_else(|| "local".to_owned()),
    };
    let report = run_bench(&params);
    // In JSON mode, stdout carries *only* the report (so `| jq` works); the
    // file-write notice and check comparison are text-mode affordances, and
    // a failed check still reaches stderr through the returned error.
    let json_only = bench.format == OutputFormat::Json;
    let mut output = if json_only {
        let mut json =
            serde_json::to_string_pretty(&report).expect("bench reports always serialize");
        json.push('\n');
        json
    } else {
        report.render()
    };
    let path = bench
        .out
        .clone()
        .or_else(|| bench.label.as_deref().map(default_out_path));
    if let Some(path) = path {
        let json = serde_json::to_string_pretty(&report).expect("bench reports always serialize");
        std::fs::write(&path, json)
            .map_err(|e| CliError::runtime(format!("cannot write {}: {e}", path.display())))?;
        if !json_only {
            output.push_str(&format!("wrote {}\n", path.display()));
        }
    }
    if let Some(baseline_path) = &bench.check {
        let text = std::fs::read_to_string(baseline_path).map_err(|e| {
            CliError::runtime(format!("cannot read {}: {e}", baseline_path.display()))
        })?;
        let value: serde::Value = serde_json::from_str(&text).map_err(|e| {
            CliError::runtime(format!("cannot parse {}: {e}", baseline_path.display()))
        })?;
        let baseline = baseline_from_value(&value).map_err(|e| {
            CliError::runtime(format!(
                "{} is not a bench report: {e}",
                baseline_path.display()
            ))
        })?;
        // Rates only compare like-for-like: a 5k-commit run measures
        // 1-2x the per-second rate of a 20k-commit run (warm-up dominates
        // differently), which would hollow out the threshold.
        if (baseline.commits, baseline.seed) != (report.commits, report.seed) {
            return Err(CliError::runtime(format!(
                "baseline {} was recorded at commits={} seed={} but this run used \
                 commits={} seed={}; throughput rates are not comparable across \
                 budgets — pass matching --commits/--seed or re-record the baseline",
                baseline_path.display(),
                baseline.commits,
                baseline.seed,
                report.commits,
                report.seed
            )));
        }
        match check_against_baseline(&report, &baseline, bench.max_regress) {
            Ok(comparison) => {
                if !json_only {
                    output.push_str(&comparison);
                    output.push_str("throughput check passed\n");
                }
            }
            Err(comparison) => {
                return Err(CliError::runtime(format!(
                    "{comparison}throughput regressed more than {:.0}% vs {}",
                    bench.max_regress * 100.0,
                    baseline_path.display()
                )));
            }
        }
    }
    Ok(output)
}

/// Executes a diff invocation; a mismatch is a runtime error (exit code 1)
/// whose message lists every differing cell.
pub fn execute_diff(diff: &DiffArgs) -> Result<String, CliError> {
    let load = |path: &std::path::Path| -> Result<Vec<Report>, CliError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| CliError::runtime(format!("cannot read {}: {e}", path.display())))?;
        parse_reports(&text)
            .map_err(|e| CliError::runtime(format!("cannot parse {}: {e}", path.display())))
    };
    let a = load(&diff.a)?;
    let b = load(&diff.b)?;
    let outcome = diff_reports(&a, &b, diff.tol);
    if outcome.is_match() {
        Ok(format!(
            "reports match: {} report(s), {} cell(s) compared, tol {}\n",
            a.len(),
            outcome.cells,
            diff.tol
        ))
    } else {
        Err(CliError::runtime(format!(
            "{}\nreports differ: {} mismatch(es) across {} compared cell(s)",
            outcome.mismatches.join("\n"),
            outcome.mismatches.len(),
            outcome.cells
        )))
    }
}

/// Full CLI entry point: parses `args` (without the binary name), executes,
/// and returns what should be printed to stdout.
pub fn main_with_args(args: &[String]) -> Result<String, CliError> {
    match parse(args)? {
        Command::Help => Ok(format!("{USAGE}\n")),
        Command::List => Ok(list_output()),
        Command::Run(run) => {
            let reports = execute_run(&run)?;
            match &run.out {
                Some(dir) => write_reports(&reports, dir, run.format),
                None => Ok(render_reports(&reports, run.format)),
            }
        }
        Command::Bench(bench) => execute_bench(&bench),
        Command::Diff(diff) => execute_diff(&diff),
        Command::Trace(TraceCmd::Dump(dump)) => crate::trace::execute_dump(&dump),
        Command::Trace(TraceCmd::Info(files)) => crate::trace::execute_info(&files),
        Command::Trace(TraceCmd::Verify(files)) => crate::trace::execute_verify(&files),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| (*a).to_owned()).collect()
    }

    #[test]
    fn parse_subcommands() {
        assert_eq!(parse(&args(&[])).unwrap(), Command::Help);
        assert_eq!(parse(&args(&["help"])).unwrap(), Command::Help);
        assert_eq!(parse(&args(&["list"])).unwrap(), Command::List);
        assert!(parse(&args(&["frobnicate"])).is_err());
        assert!(parse(&args(&["list", "extra"])).is_err());
    }

    #[test]
    fn parse_run_flags() {
        let cmd = parse(&args(&[
            "run",
            "fig7",
            "fig10",
            "--commits",
            "1234",
            "--seed",
            "9",
            "--format",
            "json",
            "--out",
            "results",
            "--jobs",
            "3",
            "--sequential",
        ]))
        .unwrap();
        let Command::Run(run) = cmd else {
            panic!("expected run");
        };
        assert_eq!(run.ids, vec!["fig7", "fig10"]);
        assert!(!run.all && !run.quick && run.sequential);
        assert_eq!(run.commits, Some(1234));
        assert_eq!(run.seed, Some(9));
        assert_eq!(run.format, OutputFormat::Json);
        assert_eq!(run.out, Some(PathBuf::from("results")));
        assert_eq!(run.jobs, Some(3));
    }

    #[test]
    fn parse_run_rejects_bad_usage() {
        assert!(parse(&args(&["run"])).is_err());
        assert!(parse(&args(&["run", "--all", "fig7"])).is_err());
        assert!(parse(&args(&["run", "--commits"])).is_err());
        assert!(parse(&args(&["run", "fig7", "--commits", "abc"])).is_err());
        assert!(parse(&args(&["run", "fig7", "--format", "xml"])).is_err());
        assert!(parse(&args(&["run", "fig7", "--jobs", "0"])).is_err());
        assert!(parse(&args(&["run", "fig7", "--bogus"])).is_err());
    }

    #[test]
    fn select_resolves_ids_and_rejects_unknown() {
        let mut run = parse_run(&args(&["fig7", "table2"])).unwrap();
        let selected = select_experiments(&run).unwrap();
        assert_eq!(selected.len(), 2);
        assert_eq!(selected[0].id(), "fig7");
        assert_eq!(selected[1].id(), "table2");
        run.ids.push("bogus".to_owned());
        let err = select_experiments(&run).err().expect("unknown id rejected");
        assert!(err.message.contains("unknown experiment `bogus`"));
        assert!(err.message.contains("fig7"));

        let all = parse_run(&args(&["--all"])).unwrap();
        assert_eq!(select_experiments(&all).unwrap().len(), registry().len());
    }

    #[test]
    fn effective_params_layering() {
        let fig8a = elsq_sim::experiments::find("fig8a").unwrap();
        let mut run = parse_run(&args(&["fig8a"])).unwrap();
        assert_eq!(effective_params(fig8a, &run), ExperimentParams::sweep());
        run.quick = true;
        assert_eq!(effective_params(fig8a, &run), ExperimentParams::quick());
        run.commits = Some(777);
        run.seed = Some(5);
        let p = effective_params(fig8a, &run);
        assert_eq!((p.commits, p.seed), (777, 5));
    }

    #[test]
    fn list_covers_every_registered_experiment() {
        let listing = list_output();
        for e in registry() {
            assert!(
                listing.lines().any(|l| l.starts_with(e.id())),
                "{} missing from list output",
                e.id()
            );
        }
        assert_eq!(listing.lines().count(), registry().len());
    }

    #[test]
    fn parse_bench_flags() {
        let cmd = parse(&args(&[
            "bench",
            "--quick",
            "--commits",
            "900",
            "--seed",
            "3",
            "--label",
            "PR3",
            "--out",
            "bench.json",
            "--format",
            "json",
            "--check",
            "BENCH_PR3.json",
            "--max-regress",
            "40",
        ]))
        .unwrap();
        let Command::Bench(b) = cmd else {
            panic!("expected bench");
        };
        assert!(b.quick);
        assert_eq!(b.commits, Some(900));
        assert_eq!(b.seed, Some(3));
        assert_eq!(b.label.as_deref(), Some("PR3"));
        assert_eq!(b.out, Some(PathBuf::from("bench.json")));
        assert_eq!(b.format, OutputFormat::Json);
        assert_eq!(b.check, Some(PathBuf::from("BENCH_PR3.json")));
        assert!((b.max_regress - 0.40).abs() < 1e-12);
    }

    #[test]
    fn parse_bench_rejects_bad_usage() {
        assert!(parse(&args(&["bench", "--format", "csv"])).is_err());
        assert!(parse(&args(&["bench", "--max-regress", "150"])).is_err());
        assert!(parse(&args(&["bench", "stray"])).is_err());
        let Command::Bench(b) = parse(&args(&["bench"])).unwrap() else {
            panic!("bare bench parses");
        };
        assert!((b.max_regress - 0.30).abs() < 1e-12);
        assert_eq!(b.format, OutputFormat::Text);
    }

    #[test]
    fn parse_diff_flags_and_arity() {
        let Command::Diff(d) =
            parse(&args(&["diff", "a.json", "b.json", "--tol", "0.01"])).unwrap()
        else {
            panic!("expected diff");
        };
        assert_eq!(d.a, PathBuf::from("a.json"));
        assert_eq!(d.b, PathBuf::from("b.json"));
        assert!((d.tol - 0.01).abs() < 1e-12);
        assert!(parse(&args(&["diff", "a.json"])).is_err());
        assert!(parse(&args(&["diff", "a", "b", "c"])).is_err());
        assert!(parse(&args(&["diff", "a", "b", "--tol", "-1"])).is_err());
        assert!(parse(&args(&["diff", "a", "b", "--bogus"])).is_err());
    }

    #[test]
    fn diff_end_to_end_matches_and_mismatches() {
        let dir = std::env::temp_dir().join(format!("elsq-diff-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let run = parse_run(&args(&["tuning", "--quick", "--commits", "500"])).unwrap();
        let reports = execute_run(&run).unwrap();
        let json = render_reports(&reports, OutputFormat::Json);
        let a = dir.join("a.json");
        let b = dir.join("b.json");
        std::fs::write(&a, &json).unwrap();
        std::fs::write(&b, &json).unwrap();
        let same = execute_diff(&DiffArgs {
            a: a.clone(),
            b: b.clone(),
            tol: 0.0,
        })
        .unwrap();
        assert!(same.contains("reports match"));
        // Different params -> mismatch with exit code 1.
        let run2 = parse_run(&args(&["tuning", "--quick", "--commits", "700"])).unwrap();
        let reports2 = execute_run(&run2).unwrap();
        std::fs::write(&b, render_reports(&reports2, OutputFormat::Json)).unwrap();
        let err = execute_diff(&DiffArgs { a, b, tol: 0.0 }).unwrap_err();
        assert_eq!(err.exit_code, 1);
        assert!(err.message.contains("reports differ"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bench_check_rejects_mismatched_budget_baseline() {
        let dir = std::env::temp_dir().join(format!("elsq-bench-budget-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("base.json");
        let base = BenchArgs {
            quick: false,
            commits: Some(200),
            seed: Some(7),
            label: None,
            out: Some(out.clone()),
            format: OutputFormat::Json,
            check: None,
            max_regress: 0.30,
        };
        execute_bench(&base).unwrap();
        // Same seed, different commit budget: rates are not comparable.
        let err = execute_bench(&BenchArgs {
            commits: Some(400),
            check: Some(out),
            out: None,
            ..base
        })
        .unwrap_err();
        assert_eq!(err.exit_code, 1);
        assert!(err.message.contains("not comparable"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bench_end_to_end_writes_and_checks() {
        let dir = std::env::temp_dir().join(format!("elsq-bench-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("bench.json");
        let bench = BenchArgs {
            quick: false,
            commits: Some(200),
            seed: Some(7),
            label: None,
            out: Some(out.clone()),
            format: OutputFormat::Json,
            check: None,
            max_regress: 0.30,
        };
        let output = execute_bench(&bench).unwrap();
        assert!(output.contains("minst_per_sec"));
        assert!(out.exists());
        // JSON mode keeps stdout pure JSON (no "wrote ..." trailer).
        let parsed: crate::bench::BenchReport = serde_json::from_str(&output).unwrap();
        assert_eq!(parsed.cases.len(), 6);
        // A fresh run checked against its own numbers passes (a near-100%
        // threshold keeps the tiny 200-commit run immune to timer noise on a
        // loaded test host; CI uses the real budget with the default 30%).
        let checked = execute_bench(&BenchArgs {
            check: Some(out.clone()),
            out: None,
            format: OutputFormat::Text,
            max_regress: 0.95,
            ..bench
        })
        .unwrap();
        assert!(checked.contains("throughput check passed"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_renders_in_every_format() {
        let run = parse_run(&args(&["tuning", "--quick", "--commits", "600"])).unwrap();
        let reports = execute_run(&run).unwrap();
        assert_eq!(reports.len(), 1);
        let text = render_reports(&reports, OutputFormat::Text);
        assert!(text.contains("== Section 5.2"));
        let csv = render_reports(&reports, OutputFormat::Csv);
        assert!(csv.starts_with("# Section 5.2"));
        let json = render_reports(&reports, OutputFormat::Json);
        let back: Vec<elsq_stats::report::Report> = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].id, "tuning");
        assert_eq!(back[0].params.commits, 600);
    }
}
