//! The `elsq-lab` command line: list and run registered experiments.
//!
//! The CLI discovers experiments exclusively through
//! [`elsq_sim::experiments::registry`], so every subcommand works unchanged
//! when a new experiment module registers itself. Parsing and execution are
//! plain functions over argument slices so the unit tests can drive them
//! without a subprocess; the `elsq-lab` binary is a thin wrapper.
//!
//! ```text
//! elsq-lab list
//! elsq-lab run fig7 fig10 --commits 60000 --seed 7 --format json --out results/
//! elsq-lab run --all --quick
//! ```

use std::fmt;
use std::path::PathBuf;

use elsq_sim::experiments::{registry, run_experiments, Experiment};
use elsq_stats::report::{ExperimentParams, Report};

/// Usage text printed by `elsq-lab help` and on parse errors.
pub const USAGE: &str = "\
elsq-lab — registry-driven experiment runner for the ELSQ reproduction

USAGE:
    elsq-lab list                 list registered experiments
    elsq-lab run [IDS...] [OPTS]  run experiments by id
    elsq-lab help                 show this help

RUN OPTIONS:
    --all              run every registered experiment
    --quick            use the quick parameter preset (5k commits)
    --commits N        override committed instructions per workload
    --seed N           override the workload generator seed
    --format FORMAT    text | csv | json (default: text)
    --out DIR          write one file per experiment into DIR
    --jobs N           cap worker threads per fan-out level (sets
                       ELSQ_THREADS; nested suite fan-outs budget
                       separately, so total live threads can exceed N —
                       --jobs 1 is exactly sequential)
    --sequential       run experiments one after another (suites still
                       parallel); with --jobs 1, fully sequential

Experiment ids map to paper artifacts; see docs/EXPERIMENTS.md.";

/// Output format of `elsq-lab run`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputFormat {
    /// Aligned plain-text tables.
    Text,
    /// RFC-4180 CSV, one `# title` comment per table.
    Csv,
    /// A JSON array of structured reports.
    Json,
}

impl OutputFormat {
    fn parse(s: &str) -> Result<Self, CliError> {
        match s {
            "text" => Ok(Self::Text),
            "csv" => Ok(Self::Csv),
            "json" => Ok(Self::Json),
            other => Err(CliError::usage(format!(
                "unknown format `{other}` (expected text, csv or json)"
            ))),
        }
    }

    fn extension(self) -> &'static str {
        match self {
            Self::Text => "txt",
            Self::Csv => "csv",
            Self::Json => "json",
        }
    }
}

/// Parsed `elsq-lab run` arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunArgs {
    /// Experiment ids to run (empty only with `--all`).
    pub ids: Vec<String>,
    /// Run every registered experiment.
    pub all: bool,
    /// Use the quick preset instead of each experiment's default.
    pub quick: bool,
    /// Override the commit budget.
    pub commits: Option<u64>,
    /// Override the workload seed.
    pub seed: Option<u64>,
    /// Output format.
    pub format: OutputFormat,
    /// Output directory (one file per experiment) instead of stdout.
    pub out: Option<PathBuf>,
    /// Worker-thread cap (exported as `ELSQ_THREADS`).
    pub jobs: Option<usize>,
    /// Disable the experiment-level fan-out.
    pub sequential: bool,
}

/// A parsed command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `elsq-lab list`
    List,
    /// `elsq-lab run ...`
    Run(RunArgs),
    /// `elsq-lab help` / `--help`
    Help,
}

/// CLI error: a message plus the process exit code to use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError {
    /// Human-readable description.
    pub message: String,
    /// Process exit code (2 = usage error, 1 = runtime error).
    pub exit_code: i32,
}

impl CliError {
    fn usage(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            exit_code: 2,
        }
    }

    fn runtime(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            exit_code: 1,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CliError {}

/// Parses the arguments following the binary name.
pub fn parse(args: &[String]) -> Result<Command, CliError> {
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        None | Some("help") | Some("--help") | Some("-h") => Ok(Command::Help),
        Some("list") => {
            if let Some(extra) = it.next() {
                return Err(CliError::usage(format!(
                    "unexpected argument `{extra}` after `list`"
                )));
            }
            Ok(Command::List)
        }
        Some("run") => parse_run(it.as_slice()).map(Command::Run),
        Some(other) => Err(CliError::usage(format!(
            "unknown subcommand `{other}`; try `elsq-lab help`"
        ))),
    }
}

fn parse_run(args: &[String]) -> Result<RunArgs, CliError> {
    let mut run = RunArgs {
        ids: Vec::new(),
        all: false,
        quick: false,
        commits: None,
        seed: None,
        format: OutputFormat::Text,
        out: None,
        jobs: None,
        sequential: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value_of = |flag: &str| -> Result<&String, CliError> {
            it.next()
                .ok_or_else(|| CliError::usage(format!("`{flag}` requires a value")))
        };
        match arg.as_str() {
            "--all" => run.all = true,
            "--quick" => run.quick = true,
            "--sequential" => run.sequential = true,
            "--commits" => run.commits = Some(parse_num(value_of("--commits")?, "--commits")?),
            "--seed" => run.seed = Some(parse_num(value_of("--seed")?, "--seed")?),
            "--jobs" => {
                let n: u64 = parse_num(value_of("--jobs")?, "--jobs")?;
                if n == 0 {
                    return Err(CliError::usage("`--jobs` must be at least 1"));
                }
                run.jobs = Some(n as usize);
            }
            "--format" => run.format = OutputFormat::parse(value_of("--format")?)?,
            "--out" => run.out = Some(PathBuf::from(value_of("--out")?)),
            flag if flag.starts_with('-') => {
                return Err(CliError::usage(format!("unknown option `{flag}`")));
            }
            id => run.ids.push(id.to_owned()),
        }
    }
    if run.all && !run.ids.is_empty() {
        return Err(CliError::usage(
            "pass either experiment ids or `--all`, not both",
        ));
    }
    if !run.all && run.ids.is_empty() {
        return Err(CliError::usage(
            "no experiments selected; pass ids or `--all` (see `elsq-lab list`)",
        ));
    }
    Ok(run)
}

fn parse_num(s: &str, flag: &str) -> Result<u64, CliError> {
    s.parse()
        .map_err(|_| CliError::usage(format!("invalid value `{s}` for `{flag}`")))
}

/// Resolves the experiments a run selects, in registry order for `--all`
/// and in command-line order otherwise.
pub fn select_experiments(run: &RunArgs) -> Result<Vec<&'static dyn Experiment>, CliError> {
    if run.all {
        return Ok(registry().to_vec());
    }
    run.ids
        .iter()
        .map(|id| {
            elsq_sim::experiments::find(id).ok_or_else(|| {
                let known: Vec<&str> = registry().iter().map(|e| e.id()).collect();
                CliError::usage(format!(
                    "unknown experiment `{id}`; known ids: {}",
                    known.join(", ")
                ))
            })
        })
        .collect()
}

/// The parameters one experiment runs with, after `--quick`, `--commits`
/// and `--seed` are applied on top of its default preset.
pub fn effective_params(experiment: &dyn Experiment, run: &RunArgs) -> ExperimentParams {
    let mut params = if run.quick {
        ExperimentParams::quick()
    } else {
        experiment.default_params()
    };
    if let Some(commits) = run.commits {
        params.commits = commits;
    }
    if let Some(seed) = run.seed {
        params.seed = seed;
    }
    params
}

/// Renders one report in the requested format.
pub fn render_report(report: &Report, format: OutputFormat) -> String {
    match format {
        OutputFormat::Text => report.render(),
        OutputFormat::Csv => report.to_csv(),
        OutputFormat::Json => {
            serde_json::to_string_pretty(report).expect("reports always serialize")
        }
    }
}

/// Renders a whole run (every report) for stdout in the requested format.
pub fn render_reports(reports: &[Report], format: OutputFormat) -> String {
    match format {
        OutputFormat::Json => {
            serde_json::to_string_pretty(&reports.to_vec()).expect("reports always serialize")
        }
        _ => {
            let mut out = String::new();
            for (i, report) in reports.iter().enumerate() {
                if i > 0 {
                    out.push('\n');
                }
                out.push_str(&render_report(report, format));
            }
            out
        }
    }
}

/// The `elsq-lab list` output: one line per experiment — id, default
/// preset, title — in registry order.
pub fn list_output() -> String {
    let mut out = String::new();
    let id_width = registry().iter().map(|e| e.id().len()).max().unwrap_or(0);
    for e in registry() {
        let p = e.default_params();
        out.push_str(&format!(
            "{:<id_width$}  commits={:<6} seed={}  {}\n",
            e.id(),
            p.commits,
            p.seed,
            e.title()
        ));
    }
    out
}

/// Executes a run and returns the produced reports (in selection order).
pub fn execute_run(run: &RunArgs) -> Result<Vec<Report>, CliError> {
    let experiments = select_experiments(run)?;
    let jobs: Vec<(&'static dyn Experiment, ExperimentParams)> = experiments
        .into_iter()
        .map(|e| (e, effective_params(e, run)))
        .collect();
    // The pool reads ELSQ_THREADS at every fan-out, so `--jobs` caps each
    // level (experiments, and each suite inside one) rather than the whole
    // process — `--jobs 1` is exactly sequential, larger values are a
    // per-level budget. Set it before any worker spawns and restore the
    // previous value afterwards so the cap cannot leak into later
    // invocations from the same process (e.g. the in-process tests).
    let saved = run.jobs.map(|jobs| {
        let previous = std::env::var("ELSQ_THREADS").ok();
        std::env::set_var("ELSQ_THREADS", jobs.to_string());
        previous
    });
    let reports = run_experiments(jobs, !run.sequential);
    if let Some(previous) = saved {
        match previous {
            Some(value) => std::env::set_var("ELSQ_THREADS", value),
            None => std::env::remove_var("ELSQ_THREADS"),
        }
    }
    Ok(reports)
}

/// Writes per-experiment files into `--out DIR` and returns the summary
/// lines printed to stdout.
pub fn write_reports(
    reports: &[Report],
    dir: &std::path::Path,
    format: OutputFormat,
) -> Result<String, CliError> {
    std::fs::create_dir_all(dir)
        .map_err(|e| CliError::runtime(format!("cannot create {}: {e}", dir.display())))?;
    let mut summary = String::new();
    for report in reports {
        let path = dir.join(format!("{}.{}", report.id, format.extension()));
        std::fs::write(&path, render_report(report, format))
            .map_err(|e| CliError::runtime(format!("cannot write {}: {e}", path.display())))?;
        summary.push_str(&format!(
            "{}: {} table(s), {:.1} ms -> {}\n",
            report.id,
            report.tables.len(),
            report.wall_time_ms,
            path.display()
        ));
    }
    Ok(summary)
}

/// Full CLI entry point: parses `args` (without the binary name), executes,
/// and returns what should be printed to stdout.
pub fn main_with_args(args: &[String]) -> Result<String, CliError> {
    match parse(args)? {
        Command::Help => Ok(format!("{USAGE}\n")),
        Command::List => Ok(list_output()),
        Command::Run(run) => {
            let reports = execute_run(&run)?;
            match &run.out {
                Some(dir) => write_reports(&reports, dir, run.format),
                None => Ok(render_reports(&reports, run.format)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| (*a).to_owned()).collect()
    }

    #[test]
    fn parse_subcommands() {
        assert_eq!(parse(&args(&[])).unwrap(), Command::Help);
        assert_eq!(parse(&args(&["help"])).unwrap(), Command::Help);
        assert_eq!(parse(&args(&["list"])).unwrap(), Command::List);
        assert!(parse(&args(&["frobnicate"])).is_err());
        assert!(parse(&args(&["list", "extra"])).is_err());
    }

    #[test]
    fn parse_run_flags() {
        let cmd = parse(&args(&[
            "run",
            "fig7",
            "fig10",
            "--commits",
            "1234",
            "--seed",
            "9",
            "--format",
            "json",
            "--out",
            "results",
            "--jobs",
            "3",
            "--sequential",
        ]))
        .unwrap();
        let Command::Run(run) = cmd else {
            panic!("expected run");
        };
        assert_eq!(run.ids, vec!["fig7", "fig10"]);
        assert!(!run.all && !run.quick && run.sequential);
        assert_eq!(run.commits, Some(1234));
        assert_eq!(run.seed, Some(9));
        assert_eq!(run.format, OutputFormat::Json);
        assert_eq!(run.out, Some(PathBuf::from("results")));
        assert_eq!(run.jobs, Some(3));
    }

    #[test]
    fn parse_run_rejects_bad_usage() {
        assert!(parse(&args(&["run"])).is_err());
        assert!(parse(&args(&["run", "--all", "fig7"])).is_err());
        assert!(parse(&args(&["run", "--commits"])).is_err());
        assert!(parse(&args(&["run", "fig7", "--commits", "abc"])).is_err());
        assert!(parse(&args(&["run", "fig7", "--format", "xml"])).is_err());
        assert!(parse(&args(&["run", "fig7", "--jobs", "0"])).is_err());
        assert!(parse(&args(&["run", "fig7", "--bogus"])).is_err());
    }

    #[test]
    fn select_resolves_ids_and_rejects_unknown() {
        let mut run = parse_run(&args(&["fig7", "table2"])).unwrap();
        let selected = select_experiments(&run).unwrap();
        assert_eq!(selected.len(), 2);
        assert_eq!(selected[0].id(), "fig7");
        assert_eq!(selected[1].id(), "table2");
        run.ids.push("bogus".to_owned());
        let err = select_experiments(&run).err().expect("unknown id rejected");
        assert!(err.message.contains("unknown experiment `bogus`"));
        assert!(err.message.contains("fig7"));

        let all = parse_run(&args(&["--all"])).unwrap();
        assert_eq!(select_experiments(&all).unwrap().len(), registry().len());
    }

    #[test]
    fn effective_params_layering() {
        let fig8a = elsq_sim::experiments::find("fig8a").unwrap();
        let mut run = parse_run(&args(&["fig8a"])).unwrap();
        assert_eq!(effective_params(fig8a, &run), ExperimentParams::sweep());
        run.quick = true;
        assert_eq!(effective_params(fig8a, &run), ExperimentParams::quick());
        run.commits = Some(777);
        run.seed = Some(5);
        let p = effective_params(fig8a, &run);
        assert_eq!((p.commits, p.seed), (777, 5));
    }

    #[test]
    fn list_covers_every_registered_experiment() {
        let listing = list_output();
        for e in registry() {
            assert!(
                listing.lines().any(|l| l.starts_with(e.id())),
                "{} missing from list output",
                e.id()
            );
        }
        assert_eq!(listing.lines().count(), registry().len());
    }

    #[test]
    fn run_renders_in_every_format() {
        let run = parse_run(&args(&["tuning", "--quick", "--commits", "600"])).unwrap();
        let reports = execute_run(&run).unwrap();
        assert_eq!(reports.len(), 1);
        let text = render_reports(&reports, OutputFormat::Text);
        assert!(text.contains("== Section 5.2"));
        let csv = render_reports(&reports, OutputFormat::Csv);
        assert!(csv.starts_with("# Section 5.2"));
        let json = render_reports(&reports, OutputFormat::Json);
        let back: Vec<elsq_stats::report::Report> = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].id, "tuning");
        assert_eq!(back[0].params.commits, 600);
    }
}
