//! The `elsq-lab diff` subcommand: cell-by-cell report comparison.
//!
//! Loads two JSON files produced by `elsq-lab run --format json` (either a
//! single [`Report`] from `--out DIR` or the JSON array stdout emits) and
//! compares them with [`elsq_stats::diff`]: report ids and parameters,
//! table titles, headers, row counts, and every cell. Numeric cells compare
//! by their raw values under a `--tol` *relative* tolerance (default `0`,
//! i.e. exact); text cells compare byte-for-byte. Wall-clock time is
//! ignored — it is the one non-deterministic field.
//!
//! A report containing degraded `FAILED (<site>)` cells is refused loudly
//! (exit code 3) before any comparison: two failure markers matching
//! byte-for-byte says nothing about the figures they replaced.
//!
//! A mismatch produces a non-zero exit with one line per differing cell, so
//! figure accuracy and bench trajectories are regression-trackable from CI:
//!
//! ```text
//! elsq-lab run fig7 --quick --format json --out a/
//! elsq-lab diff a/fig7.json b/fig7.json --tol 0.01
//! ```

use serde::Deserialize;

use elsq_stats::report::Report;

pub use elsq_stats::diff::{cells_match, degraded_cells, diff_reports, rel_diff, DiffOutcome};

/// Parses report JSON that is either a single report or an array of them.
pub fn parse_reports(json: &str) -> Result<Vec<Report>, String> {
    let value: serde::Value = serde_json::from_str(json).map_err(|e| e.to_string())?;
    let parsed = match &value {
        serde::Value::Seq(items) => items
            .iter()
            .map(Report::from_value)
            .collect::<Result<Vec<_>, _>>(),
        _ => Report::from_value(&value).map(|r| vec![r]),
    };
    parsed.map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use elsq_stats::report::{Cell, ExperimentParams, Table};

    fn report(id: &str, v: f64) -> Report {
        let mut t = Table::new("t", &["name", "x"]);
        t.row_cells(vec![Cell::text("row"), Cell::f(v)]);
        Report::new(id, "title", ExperimentParams::quick()).with_table(t)
    }

    #[test]
    fn parse_accepts_single_and_array_forms() {
        let single = serde_json::to_string(&report("fig7", 1.0)).unwrap();
        assert_eq!(parse_reports(&single).unwrap().len(), 1);
        let array = serde_json::to_string(&vec![report("a", 1.0), report("b", 2.0)]).unwrap();
        assert_eq!(parse_reports(&array).unwrap().len(), 2);
        assert!(parse_reports("not json").is_err());
    }

    #[test]
    fn reexported_comparison_round_trips_through_json() {
        // The comparison core lives in elsq_stats::diff; pin that the
        // re-export composes with this crate's JSON loading.
        let a = parse_reports(&serde_json::to_string(&report("fig7", 1.25)).unwrap()).unwrap();
        let b = parse_reports(&serde_json::to_string(&report("fig7", 1.5)).unwrap()).unwrap();
        assert!(diff_reports(&a, &a, 0.0).is_match());
        assert!(!diff_reports(&a, &b, 0.1).is_match());
        assert!(diff_reports(&a, &b, 0.25).is_match());
    }
}
