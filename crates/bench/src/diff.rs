//! The `elsq-lab diff` subcommand: cell-by-cell report comparison.
//!
//! Loads two JSON files produced by `elsq-lab run --format json` (either a
//! single [`Report`] from `--out DIR` or the JSON array stdout emits) and
//! compares them structurally: report ids and parameters, table titles,
//! headers, row counts, and every cell. Numeric cells compare by their raw
//! values under a `--tol` *relative* tolerance (default `0`, i.e. exact);
//! text cells compare byte-for-byte. Wall-clock time is ignored — it is the
//! one non-deterministic field.
//!
//! A mismatch produces a non-zero exit with one line per differing cell, so
//! figure accuracy and bench trajectories are regression-trackable from CI:
//!
//! ```text
//! elsq-lab run fig7 --quick --format json --out a/
//! elsq-lab diff a/fig7.json b/fig7.json --tol 0.01
//! ```

use serde::Deserialize;

use elsq_stats::report::{Cell, Report};

/// Relative difference between two floats, `0` when both are equal
/// (including both zero / both the same non-finite value).
fn rel_diff(a: f64, b: f64) -> f64 {
    if a == b || (a.is_nan() && b.is_nan()) {
        return 0.0;
    }
    let scale = a.abs().max(b.abs());
    if scale == 0.0 {
        0.0
    } else {
        (a - b).abs() / scale
    }
}

/// Whether two cells match under `tol`. Numeric cells (both carrying raw
/// values) compare by relative difference; everything else by text.
fn cells_match(a: &Cell, b: &Cell, tol: f64) -> bool {
    match (a.value, b.value) {
        (Some(x), Some(y)) => rel_diff(x, y) <= tol,
        _ => a.text == b.text,
    }
}

/// Outcome of a diff: the number of cells compared and every mismatch line.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DiffOutcome {
    /// Total cells compared.
    pub cells: usize,
    /// One human-readable line per mismatch.
    pub mismatches: Vec<String>,
}

impl DiffOutcome {
    /// Whether the two report sets matched everywhere.
    pub fn is_match(&self) -> bool {
        self.mismatches.is_empty()
    }

    fn push(&mut self, line: String) {
        self.mismatches.push(line);
    }
}

/// Compares two report lists cell-by-cell under a relative tolerance.
pub fn diff_reports(a: &[Report], b: &[Report], tol: f64) -> DiffOutcome {
    let mut out = DiffOutcome::default();
    if a.len() != b.len() {
        out.push(format!("report count differs: {} vs {}", a.len(), b.len()));
        return out;
    }
    for (ra, rb) in a.iter().zip(b) {
        let id = &ra.id;
        if ra.id != rb.id {
            out.push(format!("report id differs: `{}` vs `{}`", ra.id, rb.id));
            continue;
        }
        if ra.params != rb.params {
            out.push(format!(
                "{id}: params differ: commits={}/seed={} vs commits={}/seed={}",
                ra.params.commits, ra.params.seed, rb.params.commits, rb.params.seed
            ));
        }
        if ra.tables.len() != rb.tables.len() {
            out.push(format!(
                "{id}: table count differs: {} vs {}",
                ra.tables.len(),
                rb.tables.len()
            ));
            continue;
        }
        for (ta, tb) in ra.tables.iter().zip(&rb.tables) {
            let title = ta.title();
            if ta.title() != tb.title() {
                out.push(format!(
                    "{id}: table title differs: `{}` vs `{}`",
                    ta.title(),
                    tb.title()
                ));
            }
            if ta.headers() != tb.headers() {
                out.push(format!("{id}/{title}: headers differ"));
                continue;
            }
            if ta.len() != tb.len() {
                out.push(format!(
                    "{id}/{title}: row count differs: {} vs {}",
                    ta.len(),
                    tb.len()
                ));
                continue;
            }
            for (row, (rowa, rowb)) in ta.rows().iter().zip(tb.rows()).enumerate() {
                if rowa.len() != rowb.len() {
                    out.push(format!(
                        "{id}/{title} row {row}: cell count differs: {} vs {}",
                        rowa.len(),
                        rowb.len()
                    ));
                    continue;
                }
                for (col, (ca, cb)) in rowa.iter().zip(rowb).enumerate() {
                    out.cells += 1;
                    if !cells_match(ca, cb, tol) {
                        let detail = match (ca.value, cb.value) {
                            (Some(x), Some(y)) => {
                                format!("{x} vs {y} (rel {:.4} > tol {tol})", rel_diff(x, y))
                            }
                            _ => format!("`{}` vs `{}`", ca.text, cb.text),
                        };
                        out.push(format!(
                            "{id}/{title} row {row} col {col} [{}]: {detail}",
                            ta.headers().get(col).map(String::as_str).unwrap_or("?")
                        ));
                    }
                }
            }
        }
    }
    out
}

/// Parses report JSON that is either a single report or an array of them.
pub fn parse_reports(json: &str) -> Result<Vec<Report>, String> {
    let value: serde::Value = serde_json::from_str(json).map_err(|e| e.to_string())?;
    let parsed = match &value {
        serde::Value::Seq(items) => items
            .iter()
            .map(Report::from_value)
            .collect::<Result<Vec<_>, _>>(),
        _ => Report::from_value(&value).map(|r| vec![r]),
    };
    parsed.map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use elsq_stats::report::{ExperimentParams, Table};

    fn report(id: &str, v: f64) -> Report {
        let mut t = Table::new("t", &["name", "x"]);
        t.row_cells(vec![Cell::text("row"), Cell::f(v)]);
        Report::new(id, "title", ExperimentParams::quick()).with_table(t)
    }

    #[test]
    fn identical_reports_match() {
        let a = [report("fig7", 1.25)];
        let out = diff_reports(&a, &a, 0.0);
        assert!(out.is_match());
        assert_eq!(out.cells, 2);
    }

    #[test]
    fn value_mismatch_is_reported_with_location() {
        let a = [report("fig7", 1.25)];
        let b = [report("fig7", 1.5)];
        let out = diff_reports(&a, &b, 0.0);
        assert_eq!(out.mismatches.len(), 1);
        assert!(out.mismatches[0].contains("fig7/t row 0 col 1 [x]"));
        // A generous tolerance absorbs the difference.
        assert!(diff_reports(&a, &b, 0.25).is_match());
        assert!(!diff_reports(&a, &b, 0.1).is_match());
    }

    #[test]
    fn structural_mismatches_are_reported() {
        let a = [report("fig7", 1.0)];
        assert!(!diff_reports(&a, &[], 0.0).is_match());
        let b = [report("fig8", 1.0)];
        assert!(!diff_reports(&a, &b, 0.0).is_match());
        let mut c = report("fig7", 1.0);
        c.params.seed = 99;
        assert!(!diff_reports(&a, &[c], 0.0).is_match());
    }

    #[test]
    fn text_cells_compare_exactly_regardless_of_tol() {
        let mut ta = Table::new("t", &["name"]);
        ta.row_cells(vec![Cell::text("a")]);
        let mut tb = Table::new("t", &["name"]);
        tb.row_cells(vec![Cell::text("b")]);
        let ra = [Report::new("x", "x", ExperimentParams::quick()).with_table(ta)];
        let rb = [Report::new("x", "x", ExperimentParams::quick()).with_table(tb)];
        assert!(!diff_reports(&ra, &rb, 10.0).is_match());
    }

    #[test]
    fn parse_accepts_single_and_array_forms() {
        let single = serde_json::to_string(&report("fig7", 1.0)).unwrap();
        assert_eq!(parse_reports(&single).unwrap().len(), 1);
        let array = serde_json::to_string(&vec![report("a", 1.0), report("b", 2.0)]).unwrap();
        assert_eq!(parse_reports(&array).unwrap().len(), 2);
        assert!(parse_reports("not json").is_err());
    }

    #[test]
    fn wall_time_is_ignored() {
        let mut a = report("fig7", 1.0);
        let b = report("fig7", 1.0);
        a.wall_time_ms = 123.0;
        assert!(diff_reports(&[a], &[b], 0.0).is_match());
    }
}
