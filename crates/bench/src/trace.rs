//! The `elsq-lab trace` subcommand family: dump, info and verify.
//!
//! * `trace dump` records suite workloads (or named members) to `.etrc`
//!   files via [`elsq_isa::etrc::record`],
//! * `trace info` prints one file's header provenance and block statistics,
//! * `trace verify` fully decodes files — every CRC, record and the trailer
//!   count — and exits non-zero on the first corrupt one,
//! * `run --trace DIR` (handled in [`crate::cli`]) loads a dumped directory
//!   as a [`TraceRoster`] and installs it as the process-global workload
//!   source, so every experiment replays the recorded streams.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use elsq_isa::etrc;
use elsq_isa::TraceSource;
use elsq_sim::driver::{install_trace_override, TraceOverrideGuard};
use elsq_stats::report::ExperimentParams;
use elsq_workload::suite::{suite, TraceRoster, WorkloadClass};

use crate::cli::CliError;

/// Parsed `elsq-lab trace dump` arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceDumpArgs {
    /// What to record: empty or `both` = both suites, `fp` / `int` = one
    /// suite, anything else = individually named workloads.
    pub workloads: Vec<String>,
    /// Use the quick parameter preset.
    pub quick: bool,
    /// Override the recorded instruction count per workload.
    pub commits: Option<u64>,
    /// Override the generator seed.
    pub seed: Option<u64>,
    /// Directory the `.etrc` files are written into.
    pub out: PathBuf,
    /// Record header-v2 files with an architectural checkpoint every this
    /// many instructions (`--checkpoint-every N`; `None` records v1).
    pub checkpoint_every: Option<u64>,
}

/// Parsed `elsq-lab trace info|verify` arguments: one or more files.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceFileArgs {
    /// The `.etrc` files to inspect.
    pub files: Vec<PathBuf>,
}

/// A parsed `elsq-lab trace` invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceCmd {
    /// `trace dump`
    Dump(TraceDumpArgs),
    /// `trace info`
    Info(TraceFileArgs),
    /// `trace verify`
    Verify(TraceFileArgs),
}

/// The parameters a dump records with, after `--quick` / `--commits` /
/// `--seed` layering (same rules as `elsq-lab run`).
///
/// The default preset is `standard` (60 000 commits), which covers every
/// experiment's default budget: the pipeline consumes exactly one record
/// per committed instruction, so a trace of N records replays any run of
/// up to N commits.
pub fn dump_params(dump: &TraceDumpArgs) -> ExperimentParams {
    let mut params = if dump.quick {
        ExperimentParams::quick()
    } else {
        ExperimentParams::standard()
    };
    if let Some(commits) = dump.commits {
        params.commits = commits;
    }
    if let Some(seed) = dump.seed {
        params.seed = seed;
    }
    params
}

/// The file name a dumped suite member gets: `<class>-<slot>-<name>.etrc`.
pub fn member_file_name(class: WorkloadClass, slot: usize, name: &str) -> String {
    format!("{}-{slot}-{name}.etrc", class.key())
}

fn selected_classes(workloads: &[String]) -> Result<Option<Vec<WorkloadClass>>, CliError> {
    if workloads.is_empty() || workloads == ["both"] {
        return Ok(Some(vec![WorkloadClass::Fp, WorkloadClass::Int]));
    }
    if workloads == ["fp"] {
        return Ok(Some(vec![WorkloadClass::Fp]));
    }
    if workloads == ["int"] {
        return Ok(Some(vec![WorkloadClass::Int]));
    }
    if workloads
        .iter()
        .any(|w| matches!(w.as_str(), "both" | "fp" | "int"))
    {
        return Err(CliError::usage(
            "pass either suite names (`fp`, `int`, `both`) or individual workload names, not a mix",
        ));
    }
    Ok(None)
}

/// Executes a dump and returns the per-file summary for stdout.
pub fn execute_dump(dump: &TraceDumpArgs) -> Result<String, CliError> {
    let params = dump_params(dump);
    // Resolve the selection to (class, slot, workload) triples before
    // touching the filesystem (usage errors must not create directories).
    // Suite selections enumerate the roster; names pick individual members
    // out of freshly seeded suites.
    let mut jobs: Vec<(WorkloadClass, usize, Box<dyn TraceSource>)> = Vec::new();
    match selected_classes(&dump.workloads)? {
        Some(classes) => {
            for class in classes {
                for (slot, workload) in suite(class, params.seed).into_iter().enumerate() {
                    jobs.push((class, slot, workload));
                }
            }
        }
        None => {
            for name in &dump.workloads {
                let mut found = None;
                'search: for class in [WorkloadClass::Fp, WorkloadClass::Int] {
                    for (slot, workload) in suite(class, params.seed).into_iter().enumerate() {
                        if workload.name() == name {
                            found = Some((class, slot, workload));
                            break 'search;
                        }
                    }
                }
                let job = found.ok_or_else(|| {
                    let known: Vec<String> = [WorkloadClass::Fp, WorkloadClass::Int]
                        .into_iter()
                        .flat_map(|c| suite(c, params.seed))
                        .map(|w| w.name().to_owned())
                        .collect();
                    CliError::usage(format!(
                        "unknown workload `{name}`; known: fp, int, both, {}",
                        known.join(", ")
                    ))
                })?;
                jobs.push(job);
            }
        }
    }
    std::fs::create_dir_all(&dump.out)
        .map_err(|e| CliError::runtime(format!("cannot create {}: {e}", dump.out.display())))?;
    let mut summary = String::new();
    for (class, slot, mut workload) in jobs {
        let path = dump
            .out
            .join(member_file_name(class, slot, workload.name()));
        let file = std::fs::File::create(&path)
            .map_err(|e| CliError::runtime(format!("cannot create {}: {e}", path.display())))?;
        let (meta, written) = etrc::record_with_checkpoints(
            workload.as_mut(),
            params.commits,
            params.seed,
            class.suite_tag(),
            Some(slot as u8),
            dump.checkpoint_every,
            std::io::BufWriter::new(file),
        )
        .map_err(|e| CliError::runtime(format!("cannot record {}: {e}", path.display())))?;
        let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        let checkpoints = meta
            .checkpoint_every
            .map(|every| format!(", checkpoints every {every}"))
            .unwrap_or_default();
        let _ = writeln!(
            summary,
            "wrote {}: {written} insts, {bytes} bytes ({:.2} B/inst), seed {}{checkpoints}",
            path.display(),
            bytes as f64 / written.max(1) as f64,
            params.seed,
        );
    }
    Ok(summary)
}

fn inspect_file(path: &Path) -> Result<(etrc::TraceMeta, etrc::TraceStats), etrc::EtrcError> {
    let file = std::fs::File::open(path)?;
    etrc::inspect(std::io::BufReader::new(file))
}

/// Executes `trace info`: full per-file provenance and block statistics.
pub fn execute_info(args: &TraceFileArgs) -> Result<String, CliError> {
    let mut out = String::new();
    for path in &args.files {
        let (meta, stats) = inspect_file(path)
            .map_err(|e| CliError::runtime(format!("{}: {e}", path.display())))?;
        let suite = WorkloadClass::from_suite_tag(meta.suite_tag)
            .map(|c| {
                format!(
                    "{} slot {}",
                    c.key(),
                    meta.suite_index
                        .map_or_else(|| "?".into(), |i| i.to_string())
                )
            })
            .unwrap_or_else(|| "none".to_owned());
        let _ = writeln!(out, "{}", path.display());
        let _ = writeln!(out, "  name           {}", meta.name);
        let _ = writeln!(out, "  format version {}", meta.version);
        let _ = writeln!(out, "  seed           {}", meta.seed);
        let _ = writeln!(out, "  suite          {suite}");
        match meta.wrong_path {
            Some(wp) => {
                let _ = writeln!(
                    out,
                    "  wrong-path     seed {} region {:#x}+{} load-rate {}",
                    wp.seed, wp.region_base, wp.region_size, wp.load_rate
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "  wrong-path     none (replay uses the default ALU fill)"
                );
            }
        }
        let _ = writeln!(
            out,
            "  instructions   {} ({} loads, {} stores, {} branches)",
            stats.insts, stats.loads, stats.stores, stats.branches
        );
        let ratio = stats.raw_bytes as f64 / stats.compressed_bytes.max(1) as f64;
        let _ = writeln!(
            out,
            "  blocks         {} ({} raw bytes -> {} compressed, {ratio:.2}:1)",
            stats.blocks, stats.raw_bytes, stats.compressed_bytes
        );
        match meta.checkpoint_every {
            Some(every) => {
                let _ = writeln!(
                    out,
                    "  checkpoints    {} (every {every} insts)",
                    stats.checkpoints
                );
            }
            None => {
                let _ = writeln!(out, "  checkpoints    none (v1 file)");
            }
        }
        let _ = writeln!(out, "  file bytes     {}", stats.file_bytes);
    }
    Ok(out)
}

/// Executes `trace verify`: fully decodes every file (all CRCs, every
/// record, the trailer count). Returns one `OK` line per file, or a runtime
/// error listing every failing file.
pub fn execute_verify(args: &TraceFileArgs) -> Result<String, CliError> {
    let mut out = String::new();
    let mut failures = Vec::new();
    for path in &args.files {
        match inspect_file(path) {
            Ok((meta, stats)) => {
                let ratio = stats.raw_bytes as f64 / stats.compressed_bytes.max(1) as f64;
                let _ = writeln!(
                    out,
                    "OK {}: {} ({} insts, {} blocks, {ratio:.2}:1 compression, all CRCs pass)",
                    path.display(),
                    meta.name,
                    stats.insts,
                    stats.blocks
                );
            }
            Err(e) => failures.push(format!("FAIL {}: {e}", path.display())),
        }
    }
    if failures.is_empty() {
        Ok(out)
    } else {
        Err(CliError::runtime(format!(
            "{out}{}\ntrace verification failed for {} of {} file(s)",
            failures.join("\n"),
            failures.len(),
            args.files.len()
        )))
    }
}

/// Loads `dir` as a roster, validates it against every `(experiment id,
/// classes, params)` job of a run, and installs it as the process-global
/// workload source. The returned guard restores the previous source when
/// dropped.
///
/// Each experiment declares which suites it simulates
/// ([`elsq_sim::experiments::Experiment::classes`]) and exactly those are
/// validated (full complement, seed match, commit-budget coverage), so a
/// single-suite dump (`trace dump fp`) replays FP-only experiments and is
/// rejected with a clean error — not a mid-run panic — when a selected
/// experiment needs the missing suite.
pub fn install_roster(
    dir: &Path,
    jobs: &[(&str, &[WorkloadClass], ExperimentParams)],
) -> Result<TraceOverrideGuard, CliError> {
    let roster = TraceRoster::from_dir(dir)
        .map_err(|e| CliError::runtime(format!("--trace {}: {e}", dir.display())))?;
    for (id, classes, params) in jobs {
        for class in *classes {
            roster
                .validate(*class, params.seed, params.commits)
                .map_err(|e| {
                    CliError::runtime(format!(
                        "--trace {}: experiment `{id}` cannot replay: {e}",
                        dir.display()
                    ))
                })?;
        }
    }
    Ok(install_trace_override(Arc::new(roster)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cli::{execute_run, parse, Command, OutputFormat, RunArgs};
    use elsq_stats::report::Report;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| (*a).to_owned()).collect()
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("elsq-trace-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn dump_info_verify_round_trip() {
        let dir = tmp_dir("div");
        let dump = TraceDumpArgs {
            workloads: vec![],
            quick: false,
            commits: Some(400),
            seed: Some(5),
            out: dir.clone(),
            checkpoint_every: None,
        };
        let summary = execute_dump(&dump).unwrap();
        assert_eq!(summary.lines().count(), 12, "both suites dumped");
        let files: Vec<PathBuf> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        assert_eq!(files.len(), 12);
        let info = execute_info(&TraceFileArgs {
            files: files.clone(),
        })
        .unwrap();
        assert!(info.contains("instructions   400"));
        assert!(info.contains("wrong-path     seed"));
        let verify = execute_verify(&TraceFileArgs { files }).unwrap();
        assert_eq!(verify.matches("OK ").count(), 12);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dump_single_workload_by_name() {
        let dir = tmp_dir("one");
        let dump = TraceDumpArgs {
            workloads: vec!["int-mcf".to_owned()],
            quick: true,
            commits: Some(100),
            seed: None,
            out: dir.clone(),
            checkpoint_every: None,
        };
        // Resolve the real name first: pick the first INT member's name.
        let name = suite(WorkloadClass::Int, 7)[0].name().to_owned();
        let dump = TraceDumpArgs {
            workloads: vec![name.clone()],
            ..dump
        };
        let summary = execute_dump(&dump).unwrap();
        assert_eq!(summary.lines().count(), 1);
        assert!(summary.contains(&name));
        let bogus = TraceDumpArgs {
            workloads: vec!["no-such-workload".to_owned()],
            ..dump
        };
        let err = execute_dump(&bogus).unwrap_err();
        assert_eq!(err.exit_code, 2);
        assert!(err.message.contains("unknown workload"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn verify_reports_corruption_with_exit_code_one() {
        let dir = tmp_dir("bad");
        let dump = TraceDumpArgs {
            workloads: vec!["fp".to_owned()],
            quick: true,
            commits: Some(120),
            seed: Some(3),
            out: dir.clone(),
            checkpoint_every: None,
        };
        execute_dump(&dump).unwrap();
        let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        files.sort();
        // Corrupt one file in the middle of its block payload.
        let victim = files[0].clone();
        let mut bytes = std::fs::read(&victim).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20;
        std::fs::write(&victim, bytes).unwrap();
        let err = execute_verify(&TraceFileArgs { files }).unwrap_err();
        assert_eq!(err.exit_code, 1);
        assert!(err.message.contains("FAIL"), "{}", err.message);
        assert!(err.message.contains("OK "), "good files still listed");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parse_trace_subcommands() {
        let cmd = parse(&args(&[
            "trace",
            "dump",
            "fp",
            "--commits",
            "500",
            "--seed",
            "3",
            "--out",
            "traces/",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Trace(TraceCmd::Dump(TraceDumpArgs {
                workloads: vec!["fp".to_owned()],
                quick: false,
                commits: Some(500),
                seed: Some(3),
                out: PathBuf::from("traces/"),
                checkpoint_every: None,
            }))
        );
        let cmd = parse(&args(&["trace", "info", "a.etrc", "b.etrc"])).unwrap();
        assert_eq!(
            cmd,
            Command::Trace(TraceCmd::Info(TraceFileArgs {
                files: vec![PathBuf::from("a.etrc"), PathBuf::from("b.etrc")],
            }))
        );
        assert!(parse(&args(&["trace"])).is_err());
        assert!(
            parse(&args(&["trace", "dump"])).is_err(),
            "--out is required"
        );
        assert!(parse(&args(&["trace", "info"])).is_err(), "needs files");
        assert!(parse(&args(&["trace", "frobnicate"])).is_err());
    }

    #[test]
    fn dump_rejects_mixed_suite_and_name_selections() {
        let err = execute_dump(&TraceDumpArgs {
            workloads: vec!["fp".to_owned(), "int-mcf".to_owned()],
            quick: true,
            commits: Some(10),
            seed: None,
            out: std::env::temp_dir().join("elsq-trace-unreached"),
            checkpoint_every: None,
        })
        .unwrap_err();
        assert_eq!(err.exit_code, 2);
        assert!(err.message.contains("not a mix"), "{}", err.message);
    }

    #[test]
    fn parse_run_trace_flag() {
        let Command::Run(run) = parse(&args(&["run", "fig7", "--trace", "traces/"])).unwrap()
        else {
            panic!("expected run");
        };
        assert_eq!(run.trace, Some(PathBuf::from("traces/")));
        assert!(parse(&args(&["run", "fig7", "--trace"])).is_err());
    }

    /// A single-suite dump replays experiments that only run that suite
    /// (`tuning` declares FP-only) and cleanly rejects ones that need the
    /// missing suite — no mid-run panic.
    #[test]
    fn single_suite_dump_replays_single_suite_experiments() {
        let dir = tmp_dir("fponly");
        execute_dump(&TraceDumpArgs {
            workloads: vec!["fp".to_owned()],
            quick: false,
            commits: Some(800),
            seed: Some(7),
            out: dir.clone(),
            checkpoint_every: None,
        })
        .unwrap();
        let run = RunArgs {
            ids: vec!["tuning".to_owned()],
            all: false,
            quick: false,
            commits: Some(800),
            seed: Some(7),
            format: OutputFormat::Json,
            out: None,
            jobs: None,
            sequential: false,
            trace: Some(dir.clone()),
            cache: None,
            resume: false,
            sample: None,
        };
        let replayed = execute_run(&run).unwrap();
        assert_eq!(replayed[0].id, "tuning");
        let err = execute_run(&RunArgs {
            ids: vec!["table2".to_owned()],
            ..run
        })
        .unwrap_err();
        assert_eq!(err.exit_code, 1);
        assert!(err.message.contains("cannot replay"), "{}", err.message);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The acceptance pin: `trace dump` then `run fig7 --trace DIR` produces
    /// a report identical to the generator-driven run.
    ///
    /// The process-global override window is safe against sibling tests
    /// because `execute_run` serializes all in-process runs under
    /// `cfg(test)` (see the `RUN_LOCK` in `cli.rs`).
    #[test]
    fn run_with_trace_matches_generator_run() {
        let dir = tmp_dir("replay");
        execute_dump(&TraceDumpArgs {
            workloads: vec![],
            quick: false,
            commits: Some(1500),
            seed: Some(7),
            out: dir.clone(),
            checkpoint_every: None,
        })
        .unwrap();
        let run = RunArgs {
            ids: vec!["fig7".to_owned()],
            all: false,
            quick: false,
            commits: Some(1500),
            seed: Some(7),
            format: OutputFormat::Json,
            out: None,
            jobs: None,
            sequential: false,
            trace: None,
            cache: None,
            resume: false,
            sample: None,
        };
        let generated: Vec<Report> = execute_run(&run)
            .unwrap()
            .into_iter()
            .map(Report::without_wall_time)
            .collect();
        let replayed: Vec<Report> = execute_run(&RunArgs {
            trace: Some(dir.clone()),
            ..run.clone()
        })
        .unwrap()
        .into_iter()
        .map(Report::without_wall_time)
        .collect();
        assert_eq!(
            replayed, generated,
            "replayed fig7 diverged from the generator run"
        );

        // Mismatched parameters are rejected up front with a clear error.
        let err = execute_run(&RunArgs {
            trace: Some(dir.clone()),
            seed: Some(8),
            ..run.clone()
        })
        .unwrap_err();
        assert_eq!(err.exit_code, 1);
        assert!(err.message.contains("seed"), "{}", err.message);
        let err = execute_run(&RunArgs {
            trace: Some(dir.clone()),
            commits: Some(2000),
            ..run
        })
        .unwrap_err();
        assert!(err.message.contains("re-dump"), "{}", err.message);
        std::fs::remove_dir_all(&dir).ok();
    }
}
