//! Regenerates Figure 8b/8c: line vs hash ERT across L1 geometries.

use elsq_workload::suite::WorkloadClass;

fn main() {
    let params = elsq_bench::sweep_params();
    for class in [WorkloadClass::Fp, WorkloadClass::Int] {
        let table = elsq_sim::experiments::fig8::run_cache_sensitivity(class, &params);
        println!("{table}");
    }
}
