//! Regenerates Figure 9: restricted disambiguation models.

fn main() {
    let table = elsq_sim::experiments::fig9::run(&elsq_bench::full_params());
    println!("{table}");
}
