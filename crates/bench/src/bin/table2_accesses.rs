//! Regenerates Table 2: accesses to the LSQ components.

use elsq_workload::suite::WorkloadClass;

fn main() {
    let params = elsq_bench::full_params();
    for class in [WorkloadClass::Fp, WorkloadClass::Int] {
        let table = elsq_sim::experiments::table2::run(class, &params);
        println!("{table}");
    }
}
