//! Regenerates Figure 1: decode→address-calculation distance distributions.

fn main() {
    let params = elsq_bench::full_params();
    let table = elsq_sim::experiments::fig1::run(&params);
    println!("{table}");
    // Also dump the raw histograms as CSV-like series for plotting.
    for dist in elsq_sim::experiments::fig1::measure(&params) {
        println!("# {} load/store histogram (30-cycle bins)", dist.class);
        println!("bin_start,loads,stores");
        let loads = dist.loads.bins();
        let stores = dist.stores.bins();
        for (i, (l, s)) in loads.iter().zip(stores.iter()).enumerate() {
            println!("{},{},{}", i as u64 * dist.loads.bin_width(), l, s);
        }
    }
}
