//! Regenerates the Section 6 energy comparison.

use elsq_workload::suite::WorkloadClass;

fn main() {
    let params = elsq_bench::full_params();
    for class in [WorkloadClass::Fp, WorkloadClass::Int] {
        let table = elsq_sim::experiments::energy::run(class, &params);
        println!("{table}");
    }
}
