//! Regenerates Figure 8a: ERT false positives vs filter size.

fn main() {
    let table = elsq_sim::experiments::fig8::run_accuracy(&elsq_bench::sweep_params());
    println!("{table}");
}
