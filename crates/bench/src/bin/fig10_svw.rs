//! Regenerates Figure 10: SVW load re-execution vs SSBF size.

fn main() {
    let table = elsq_sim::experiments::fig10::run(&elsq_bench::sweep_params());
    println!("{table}");
}
