//! `elsq-lab` — the registry-driven experiment runner.
//!
//! Replaces the ten one-shot figure binaries: every paper artifact is a
//! registered experiment (`elsq-lab list`) runnable by id with shared
//! parameter, format and output flags (`elsq-lab run fig7 table2 --format
//! json`). See `docs/EXPERIMENTS.md` for the id ↔ figure mapping.
//!
//! Exit codes: 0 success, 1 runtime error, 2 usage error or client
//! timeout, 3 degraded success (a sweep/submit completed but some points
//! failed — see `docs/ROBUSTNESS.md`).

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match elsq_bench::cli::run_cli(&args) {
        Ok(run) => {
            print!("{}", run.output);
            ExitCode::from(run.exit_code as u8)
        }
        Err(err) => {
            eprintln!("elsq-lab: {err}");
            if err.show_usage {
                eprintln!("\n{}", elsq_bench::cli::USAGE);
            }
            ExitCode::from(err.exit_code as u8)
        }
    }
}
