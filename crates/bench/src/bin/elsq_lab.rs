//! `elsq-lab` — the registry-driven experiment runner.
//!
//! Replaces the ten one-shot figure binaries: every paper artifact is a
//! registered experiment (`elsq-lab list`) runnable by id with shared
//! parameter, format and output flags (`elsq-lab run fig7 table2 --format
//! json`). See `docs/EXPERIMENTS.md` for the id ↔ figure mapping.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match elsq_bench::cli::main_with_args(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("elsq-lab: {err}");
            if err.exit_code == 2 {
                eprintln!("\n{}", elsq_bench::cli::USAGE);
            }
            ExitCode::from(err.exit_code as u8)
        }
    }
}
