//! Regenerates Figure 7: speed-up of large-window LSQ schemes over OoO-64.

fn main() {
    let table = elsq_sim::experiments::fig7::run(&elsq_bench::full_params());
    println!("{table}");
}
