//! Regenerates Figure 11: LL-LSQ inactivity vs L2 size.

fn main() {
    let table = elsq_sim::experiments::fig11::run(&elsq_bench::full_params());
    println!("{table}");
}
