//! Regenerates the Section 5.2 epoch/LSQ sizing study.

fn main() {
    let table = elsq_sim::experiments::tuning::run(&elsq_bench::full_params());
    println!("{table}");
}
