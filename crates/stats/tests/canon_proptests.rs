//! Property tests pinning the canonical-hash invariants the result cache
//! depends on: the hash of a value tree survives a JSON round trip (encode
//! to text, parse back) and is unchanged when map entries are reordered.
//!
//! A drifting key silently poisons the cache — a re-serialized scenario
//! would recompute (or worse, collide) — so these invariants are pinned
//! over randomly generated value trees, not just the handful of structs the
//! simulator happens to serialize today.

use elsq_stats::canon::{canonical_hash, canonicalize};
use proptest::prelude::*;
use serde::Value;

/// Builds a value tree from a stream of `(op, payload)` integers — a tiny
/// stack machine, so random integer vectors explore nested maps/sequences
/// with mixed number classes without needing recursive strategies.
fn build_value(ops: &[(u64, u64)]) -> Value {
    // Stack of containers under construction: maps collect (key, value)
    // pairs, sequences collect values.
    enum Frame {
        Seq(Vec<Value>),
        Map(Vec<(String, Value)>),
    }
    let mut stack = vec![Frame::Seq(Vec::new())];
    let mut key_counter = 0u64;
    let push = |stack: &mut Vec<Frame>, key_counter: &mut u64, v: Value| match stack
        .last_mut()
        .expect("root frame")
    {
        Frame::Seq(items) => items.push(v),
        Frame::Map(entries) => {
            *key_counter += 1;
            entries.push((format!("k{key_counter}"), v));
        }
    };
    for &(op, payload) in ops {
        match op % 10 {
            0 => push(&mut stack, &mut key_counter, Value::Null),
            1 => push(&mut stack, &mut key_counter, Value::Bool(payload % 2 == 0)),
            2 => push(&mut stack, &mut key_counter, Value::U64(payload)),
            3 => push(
                &mut stack,
                &mut key_counter,
                Value::I64(-((payload % 1_000_000) as i64)),
            ),
            // Dyadic fractions round-trip exactly through shortest-display
            // printing, and payload/8 exercises both integral and
            // fractional floats.
            4 => push(
                &mut stack,
                &mut key_counter,
                Value::F64((payload % 100_000) as f64 / 8.0),
            ),
            5 => push(
                &mut stack,
                &mut key_counter,
                Value::Str(format!("s{}", payload % 1000)),
            ),
            6 if stack.len() < 5 => stack.push(Frame::Seq(Vec::new())),
            7 if stack.len() < 5 => stack.push(Frame::Map(Vec::new())),
            _ => {
                if stack.len() > 1 {
                    let done = match stack.pop().expect("non-empty") {
                        Frame::Seq(items) => Value::Seq(items),
                        Frame::Map(entries) => Value::Map(entries),
                    };
                    push(&mut stack, &mut key_counter, done);
                }
            }
        }
    }
    // Close whatever is still open.
    while stack.len() > 1 {
        let done = match stack.pop().expect("non-empty") {
            Frame::Seq(items) => Value::Seq(items),
            Frame::Map(entries) => Value::Map(entries),
        };
        match stack.last_mut().expect("root frame") {
            Frame::Seq(items) => items.push(done),
            Frame::Map(entries) => entries.push(("tail".to_owned(), done)),
        }
    }
    match stack.pop().expect("root frame") {
        Frame::Seq(items) => Value::Seq(items),
        Frame::Map(_) => unreachable!("root is a sequence"),
    }
}

/// Recursively reverses the entry order of every map (and sequence-of-map
/// contents stay in place: sequences are ordered data, maps are not).
fn reverse_maps(value: &Value) -> Value {
    match value {
        Value::Seq(items) => Value::Seq(items.iter().map(reverse_maps).collect()),
        Value::Map(entries) => Value::Map(
            entries
                .iter()
                .rev()
                .map(|(k, v)| (k.clone(), reverse_maps(v)))
                .collect(),
        ),
        other => other.clone(),
    }
}

proptest! {
    /// Encode → parse → hash equals hash: the cache key of any value tree
    /// survives the JSON text representation.
    #[test]
    fn hash_survives_json_round_trip(ops in prop::collection::vec((0u64..10, 0u64..u64::MAX), 1..60)) {
        let value = build_value(&ops);
        let text = serde_json::to_string(&value).expect("values serialize");
        let back = serde_json::parse_value(&text).expect("encoded JSON parses");
        prop_assert_eq!(
            canonical_hash(&value),
            canonical_hash(&back),
            "round trip changed the key for {}",
            text
        );
    }

    /// Reordering map entries — anywhere in the tree — never changes the
    /// hash.
    #[test]
    fn hash_ignores_map_entry_order(ops in prop::collection::vec((0u64..10, 0u64..u64::MAX), 1..60)) {
        let value = build_value(&ops);
        let reversed = reverse_maps(&value);
        prop_assert_eq!(canonical_hash(&value), canonical_hash(&reversed));
    }

    /// Canonicalization is idempotent: a canonical tree canonicalizes to
    /// itself (so hashing pre-canonicalized values is stable too).
    #[test]
    fn canonicalize_is_idempotent(ops in prop::collection::vec((0u64..10, 0u64..u64::MAX), 1..60)) {
        let once = canonicalize(&build_value(&ops));
        let twice = canonicalize(&once);
        prop_assert_eq!(once, twice);
    }
}
