//! SMARTS-style systematic sampling: the sampling specification and the
//! per-window statistics that turn sampled runs into mean ± confidence
//! interval figures.
//!
//! A sampled run divides the instruction stream into periods of
//! [`SamplingSpec::period`] instructions. Each period ends with a detailed
//! window of [`SamplingSpec::window`] instructions simulated by the cycle
//! loop, preceded by [`SamplingSpec::warmup`] instructions of functional
//! cache/filter warming; everything before the warm-up is functionally
//! fast-forwarded (architectural state advances, no cycles are modelled).
//!
//! ```text
//! |----------- period -----------|----------- period -----------| ...
//! |   skip    | warmup | window  |   skip    | warmup | window  |
//!  fast-fwd     warm     detailed
//! ```
//!
//! Each detailed window contributes one IPC observation; the collection of
//! windows yields a sample mean and, from the per-window variance, a 95%
//! confidence half-width (`1.96·s/√n`, the SMARTS formulation). All of the
//! arithmetic is plain `f64` over deterministic inputs, so identically
//! specified runs produce byte-identical statistics.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The z-score of a two-sided 95% confidence interval.
pub const Z_95: f64 = 1.96;

/// A systematic-sampling specification: how a sampled run carves the
/// instruction stream into fast-forward, warm-up and detailed phases.
///
/// Parsed from the CLI syntax `PERIOD:WINDOW[:WARMUP]` (warm-up defaults
/// to 0). Invariants, enforced by [`SamplingSpec::new`] and the parser:
/// `window >= 1` and `warmup + window <= period` (so every period has a
/// non-negative fast-forward phase).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SamplingSpec {
    /// Instructions per sampling period (fast-forward + warm-up + window).
    pub period: u64,
    /// Instructions simulated in detail at the end of each period.
    pub window: u64,
    /// Instructions of functional cache/filter warming before each window.
    pub warmup: u64,
}

impl SamplingSpec {
    /// Creates a validated spec.
    pub fn new(period: u64, window: u64, warmup: u64) -> Result<Self, String> {
        if window == 0 {
            return Err("sampling window must be at least 1 instruction".to_owned());
        }
        let occupied = warmup
            .checked_add(window)
            .ok_or_else(|| "sampling warmup + window overflows".to_owned())?;
        if occupied > period {
            return Err(format!(
                "sampling warmup ({warmup}) + window ({window}) exceed the period ({period})"
            ));
        }
        Ok(Self {
            period,
            window,
            warmup,
        })
    }

    /// Parses the CLI syntax `PERIOD:WINDOW[:WARMUP]`.
    pub fn parse(s: &str) -> Result<Self, String> {
        let parts: Vec<&str> = s.split(':').collect();
        if parts.len() < 2 || parts.len() > 3 {
            return Err(format!(
                "malformed sampling spec `{s}`: expected PERIOD:WINDOW[:WARMUP]"
            ));
        }
        let num = |part: &str, what: &str| -> Result<u64, String> {
            part.parse()
                .map_err(|_| format!("malformed sampling spec `{s}`: invalid {what} `{part}`"))
        };
        let period = num(parts[0], "period")?;
        let window = num(parts[1], "window")?;
        let warmup = match parts.get(2) {
            Some(part) => num(part, "warmup")?,
            None => 0,
        };
        Self::new(period, window, warmup)
    }

    /// Instructions fast-forwarded (neither warmed nor simulated) per
    /// period.
    pub fn skip(&self) -> u64 {
        self.period - self.warmup - self.window
    }
}

impl fmt::Display for SamplingSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}", self.period, self.window, self.warmup)
    }
}

/// One detailed window's observation: what it committed and how many
/// cycles the cycle loop spent on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowSample {
    /// Instructions committed inside the window.
    pub committed: u64,
    /// Cycles elapsed across the window.
    pub cycles: u64,
}

impl WindowSample {
    /// The window's IPC observation (0 for an empty window).
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }
}

/// The sampling record of one workload's sampled run: the spec it ran
/// under, the phase totals, and every detailed window's observation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SamplingStats {
    /// The specification the run sampled under.
    pub spec: SamplingSpec,
    /// Instructions functionally fast-forwarded (no warming, no cycles).
    pub skipped: u64,
    /// Instructions spent warming caches/filters before windows.
    pub warmed: u64,
    /// Every detailed window, in stream order.
    pub windows: Vec<WindowSample>,
}

impl SamplingStats {
    /// Number of detailed windows observed.
    pub fn window_count(&self) -> usize {
        self.windows.len()
    }

    /// Arithmetic mean of the per-window IPC observations (the sampled IPC
    /// estimate; 0 when no window completed).
    pub fn mean_ipc(&self) -> f64 {
        if self.windows.is_empty() {
            return 0.0;
        }
        self.windows.iter().map(WindowSample::ipc).sum::<f64>() / self.windows.len() as f64
    }

    /// Sample variance (n−1 denominator) of the per-window IPC
    /// observations; 0 with fewer than two windows.
    pub fn ipc_variance(&self) -> f64 {
        let n = self.windows.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.mean_ipc();
        self.windows
            .iter()
            .map(|w| {
                let d = w.ipc() - mean;
                d * d
            })
            .sum::<f64>()
            / (n as f64 - 1.0)
    }

    /// Half-width of the 95% confidence interval around [`mean_ipc`]
    /// (`1.96·s/√n`); 0 with fewer than two windows.
    ///
    /// [`mean_ipc`]: SamplingStats::mean_ipc
    pub fn ci95_half_width(&self) -> f64 {
        let n = self.windows.len();
        if n < 2 {
            return 0.0;
        }
        Z_95 * (self.ipc_variance() / n as f64).sqrt()
    }
}

/// Combines per-workload `(mean, ci95 half-width)` pairs into a suite-level
/// `(mean, half-width)`: the suite mean is the arithmetic mean of the
/// members (matching the unsampled suite-mean-IPC convention) and, the
/// members being independent, their standard errors combine in quadrature
/// scaled by `1/K`.
pub fn combine_ci(members: &[(f64, f64)]) -> (f64, f64) {
    if members.is_empty() {
        return (0.0, 0.0);
    }
    let k = members.len() as f64;
    let mean = members.iter().map(|(m, _)| m).sum::<f64>() / k;
    let half = members.iter().map(|(_, h)| h * h).sum::<f64>().sqrt() / k;
    (mean, half)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_two_and_three_part_specs() {
        let spec = SamplingSpec::parse("10000:1000").unwrap();
        assert_eq!(
            spec,
            SamplingSpec {
                period: 10_000,
                window: 1_000,
                warmup: 0
            }
        );
        assert_eq!(spec.skip(), 9_000);
        let spec = SamplingSpec::parse("10000:1000:500").unwrap();
        assert_eq!(spec.warmup, 500);
        assert_eq!(spec.skip(), 8_500);
        assert_eq!(spec.to_string(), "10000:1000:500");
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "",
            "1000",
            "a:b",
            "1000:",
            ":100",
            "1000:0",
            "1000:100:x",
            "100:90:20",
            "1000:100:500:7",
        ] {
            assert!(SamplingSpec::parse(bad).is_err(), "`{bad}` should fail");
        }
        // Window exactly filling the period is legal (degenerate: all
        // detailed).
        assert!(SamplingSpec::parse("100:100").is_ok());
        assert!(SamplingSpec::parse("100:80:20").is_ok());
    }

    #[test]
    fn window_ipc_and_empty_cases() {
        assert_eq!(
            WindowSample {
                committed: 500,
                cycles: 250
            }
            .ipc(),
            2.0
        );
        assert_eq!(
            WindowSample {
                committed: 0,
                cycles: 0
            }
            .ipc(),
            0.0
        );
    }

    fn stats(ipcs: &[(u64, u64)]) -> SamplingStats {
        SamplingStats {
            spec: SamplingSpec::new(1_000, 100, 0).unwrap(),
            skipped: 0,
            warmed: 0,
            windows: ipcs
                .iter()
                .map(|&(committed, cycles)| WindowSample { committed, cycles })
                .collect(),
        }
    }

    #[test]
    fn mean_variance_and_ci_match_hand_computation() {
        // IPCs: 1.0, 2.0, 3.0 -> mean 2, variance 1, s = 1.
        let s = stats(&[(100, 100), (200, 100), (300, 100)]);
        assert_eq!(s.window_count(), 3);
        assert!((s.mean_ipc() - 2.0).abs() < 1e-12);
        assert!((s.ipc_variance() - 1.0).abs() < 1e-12);
        let expected = Z_95 * (1.0f64 / 3.0).sqrt();
        assert!((s.ci95_half_width() - expected).abs() < 1e-12);
    }

    #[test]
    fn degenerate_window_counts_have_zero_width() {
        assert_eq!(stats(&[]).mean_ipc(), 0.0);
        assert_eq!(stats(&[]).ci95_half_width(), 0.0);
        let one = stats(&[(100, 50)]);
        assert_eq!(one.mean_ipc(), 2.0);
        assert_eq!(one.ci95_half_width(), 0.0);
    }

    #[test]
    fn combine_ci_averages_means_and_quadrature_halves() {
        let (mean, half) = combine_ci(&[(1.0, 0.3), (3.0, 0.4)]);
        assert!((mean - 2.0).abs() < 1e-12);
        assert!((half - 0.25).abs() < 1e-12); // sqrt(0.09+0.16)/2
        assert_eq!(combine_ci(&[]), (0.0, 0.0));
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = SamplingSpec::parse("50000:2000:1000").unwrap();
        let json = serde_json::to_string(&spec).unwrap();
        let back: SamplingSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
    }
}
