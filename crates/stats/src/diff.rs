//! Cell-by-cell structural comparison of [`Report`]s.
//!
//! The comparison core behind `elsq-lab diff` and the `tolerance` suite
//! assertion (`elsq-lab test`): report ids and parameters, table titles,
//! headers, row counts, and every cell. Numeric cells (both carrying raw
//! values) compare by *relative* difference under a tolerance; text cells
//! compare byte-for-byte. Wall-clock time is ignored — it is the one
//! non-deterministic report field.
//!
//! Degraded reports — ones containing `FAILED (<site>)` cells from
//! fault-injected or otherwise failed points — are detectable via
//! [`degraded_cells`]; callers must refuse to treat such reports as
//! comparable data rather than silently matching the failure markers.

use crate::report::{Cell, Report};

/// Relative difference between two floats, `0` when both are equal
/// (including both zero / both the same non-finite value).
pub fn rel_diff(a: f64, b: f64) -> f64 {
    if a == b || (a.is_nan() && b.is_nan()) {
        return 0.0;
    }
    let scale = a.abs().max(b.abs());
    if scale == 0.0 {
        0.0
    } else {
        (a - b).abs() / scale
    }
}

/// Whether two cells match under `tol`. Numeric cells (both carrying raw
/// values) compare by relative difference; everything else by text.
pub fn cells_match(a: &Cell, b: &Cell, tol: f64) -> bool {
    match (a.value, b.value) {
        (Some(x), Some(y)) => rel_diff(x, y) <= tol,
        _ => a.text == b.text,
    }
}

/// Outcome of a diff: the number of cells compared and every mismatch line.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DiffOutcome {
    /// Total cells compared.
    pub cells: usize,
    /// One human-readable line per mismatch.
    pub mismatches: Vec<String>,
}

impl DiffOutcome {
    /// Whether the two report sets matched everywhere.
    pub fn is_match(&self) -> bool {
        self.mismatches.is_empty()
    }

    fn push(&mut self, line: String) {
        self.mismatches.push(line);
    }
}

/// Compares two report lists cell-by-cell under a relative tolerance.
pub fn diff_reports(a: &[Report], b: &[Report], tol: f64) -> DiffOutcome {
    let mut out = DiffOutcome::default();
    if a.len() != b.len() {
        out.push(format!("report count differs: {} vs {}", a.len(), b.len()));
        return out;
    }
    for (ra, rb) in a.iter().zip(b) {
        let id = &ra.id;
        if ra.id != rb.id {
            out.push(format!("report id differs: `{}` vs `{}`", ra.id, rb.id));
            continue;
        }
        if ra.params != rb.params {
            out.push(format!(
                "{id}: params differ: commits={}/seed={} vs commits={}/seed={}",
                ra.params.commits, ra.params.seed, rb.params.commits, rb.params.seed
            ));
        }
        if ra.tables.len() != rb.tables.len() {
            out.push(format!(
                "{id}: table count differs: {} vs {}",
                ra.tables.len(),
                rb.tables.len()
            ));
            continue;
        }
        for (ta, tb) in ra.tables.iter().zip(&rb.tables) {
            let title = ta.title();
            if ta.title() != tb.title() {
                out.push(format!(
                    "{id}: table title differs: `{}` vs `{}`",
                    ta.title(),
                    tb.title()
                ));
            }
            if ta.headers() != tb.headers() {
                out.push(format!("{id}/{title}: headers differ"));
                continue;
            }
            if ta.len() != tb.len() {
                out.push(format!(
                    "{id}/{title}: row count differs: {} vs {}",
                    ta.len(),
                    tb.len()
                ));
                continue;
            }
            for (row, (rowa, rowb)) in ta.rows().iter().zip(tb.rows()).enumerate() {
                if rowa.len() != rowb.len() {
                    out.push(format!(
                        "{id}/{title} row {row}: cell count differs: {} vs {}",
                        rowa.len(),
                        rowb.len()
                    ));
                    continue;
                }
                for (col, (ca, cb)) in rowa.iter().zip(rowb).enumerate() {
                    out.cells += 1;
                    if !cells_match(ca, cb, tol) {
                        let detail = match (ca.value, cb.value) {
                            (Some(x), Some(y)) => {
                                format!("{x} vs {y} (rel {:.4} > tol {tol})", rel_diff(x, y))
                            }
                            _ => format!("`{}` vs `{}`", ca.text, cb.text),
                        };
                        out.push(format!(
                            "{id}/{title} row {row} col {col} [{}]: {detail}",
                            ta.headers().get(col).map(String::as_str).unwrap_or("?")
                        ));
                    }
                }
            }
        }
    }
    out
}

/// Every degraded `FAILED (<site>)` cell of a report, as human-readable
/// `table / row label / column` locations (empty for a healthy report).
///
/// Sweep reports render failed grid points this way (see
/// `elsq_sim::scenario::sweep_report`), so a consumer asserting on — or
/// diffing — report data must check this first: a degraded marker is not a
/// number and must never silently compare equal to another failure.
pub fn degraded_cells(report: &Report) -> Vec<String> {
    let mut out = Vec::new();
    for table in &report.tables {
        for (row_idx, row) in table.rows().iter().enumerate() {
            let label = row
                .first()
                .map(|c| c.text.as_str())
                .filter(|t| !t.is_empty())
                .map(str::to_owned)
                .unwrap_or_else(|| format!("row {row_idx}"));
            for (col, cell) in row.iter().enumerate() {
                if cell.is_failed() {
                    out.push(format!(
                        "{} / {label} / {}: {}",
                        table.title(),
                        table.headers().get(col).map(String::as_str).unwrap_or("?"),
                        cell.text
                    ));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{ExperimentParams, Table};

    fn report(id: &str, v: f64) -> Report {
        let mut t = Table::new("t", &["name", "x"]);
        t.row_cells(vec![Cell::text("row"), Cell::f(v)]);
        Report::new(id, "title", ExperimentParams::quick()).with_table(t)
    }

    #[test]
    fn identical_reports_match() {
        let a = [report("fig7", 1.25)];
        let out = diff_reports(&a, &a, 0.0);
        assert!(out.is_match());
        assert_eq!(out.cells, 2);
    }

    #[test]
    fn value_mismatch_is_reported_with_location() {
        let a = [report("fig7", 1.25)];
        let b = [report("fig7", 1.5)];
        let out = diff_reports(&a, &b, 0.0);
        assert_eq!(out.mismatches.len(), 1);
        assert!(out.mismatches[0].contains("fig7/t row 0 col 1 [x]"));
        // A generous tolerance absorbs the difference.
        assert!(diff_reports(&a, &b, 0.25).is_match());
        assert!(!diff_reports(&a, &b, 0.1).is_match());
    }

    #[test]
    fn structural_mismatches_are_reported() {
        let a = [report("fig7", 1.0)];
        assert!(!diff_reports(&a, &[], 0.0).is_match());
        let b = [report("fig8", 1.0)];
        assert!(!diff_reports(&a, &b, 0.0).is_match());
        let mut c = report("fig7", 1.0);
        c.params.seed = 99;
        assert!(!diff_reports(&a, &[c], 0.0).is_match());
    }

    #[test]
    fn text_cells_compare_exactly_regardless_of_tol() {
        let mut ta = Table::new("t", &["name"]);
        ta.row_cells(vec![Cell::text("a")]);
        let mut tb = Table::new("t", &["name"]);
        tb.row_cells(vec![Cell::text("b")]);
        let ra = [Report::new("x", "x", ExperimentParams::quick()).with_table(ta)];
        let rb = [Report::new("x", "x", ExperimentParams::quick()).with_table(tb)];
        assert!(!diff_reports(&ra, &rb, 10.0).is_match());
    }

    #[test]
    fn wall_time_is_ignored() {
        let mut a = report("fig7", 1.0);
        let b = report("fig7", 1.0);
        a.wall_time_ms = 123.0;
        assert!(diff_reports(&[a], &[b], 0.0).is_match());
    }

    #[test]
    fn degraded_cells_are_located_and_named() {
        let mut t = Table::new("grid", &["point", "suite", "mean IPC"]);
        t.row_cells(vec![
            Cell::text("rob=48"),
            Cell::text("fp"),
            Cell::text("FAILED (lsq-alloc)"),
        ]);
        t.row_cells(vec![Cell::text("rob=64"), Cell::text("fp"), Cell::f(1.2)]);
        let r = Report::new("sweep-x", "x", ExperimentParams::quick()).with_table(t);
        let cells = degraded_cells(&r);
        assert_eq!(cells.len(), 1);
        assert!(
            cells[0].contains("grid / rob=48 / mean IPC"),
            "{}",
            cells[0]
        );
        assert!(cells[0].contains("FAILED (lsq-alloc)"));
        assert!(degraded_cells(&report("ok", 1.0)).is_empty());
    }

    #[test]
    fn two_degraded_reports_still_diff_equal_cellwise() {
        // diff_reports itself is marker-blind (two identical FAILED texts
        // match); refusing to compare degraded reports is the *caller's*
        // job via `degraded_cells` — pinned here so the layering is explicit.
        let mut t = Table::new("grid", &["point", "mean IPC"]);
        t.row_cells(vec![Cell::text("p"), Cell::text("FAILED (site)")]);
        let r = [Report::new("s", "s", ExperimentParams::quick()).with_table(t)];
        assert!(diff_reports(&r, &r, 0.0).is_match());
        assert!(!degraded_cells(&r[0]).is_empty());
    }
}
