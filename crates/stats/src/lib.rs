//! Statistics, access counters, energy model and report formatting for the
//! ELSQ simulator.
//!
//! The paper's evaluation (Sections 5 and 6) reports three kinds of numbers:
//!
//! * IPC / speed-ups (collected by the processor models in `elsq-cpu`),
//! * structure access counts normalized to 100 million committed
//!   instructions ([`counters::LsqAccessCounters`], Table 2),
//! * per-access read energies estimated with CACTI ([`energy`], Section 6).
//!
//! This crate provides the shared bookkeeping types so every LSQ and CPU
//! model counts events the same way, plus small plain-text/CSV table
//! renderers ([`report`]) used by the experiment binaries to print rows in
//! the same layout as the paper's tables and figures.
//!
//! # Example
//!
//! ```
//! use elsq_stats::counters::LsqAccessCounters;
//!
//! let mut c = LsqAccessCounters::default();
//! c.hl_sq_searches += 270;
//! c.ert_lookups += 275;
//! let per_100m = c.scaled_per_100m(1_000);
//! assert_eq!(per_100m.hl_sq_searches, 27_000_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod canon;
pub mod counters;
pub mod diff;
pub mod energy;
pub mod report;
pub mod sampling;

pub use canon::{canonical_hash, canonical_hash_of, hash_hex};
pub use counters::{LsqAccessCounters, SimCounters};
pub use diff::{degraded_cells, diff_reports, DiffOutcome};
pub use energy::{EnergyModel, StructureKind, StructureSpec};
pub use report::{Cell, ExperimentParams, Report, Table};
pub use sampling::{SamplingSpec, SamplingStats, WindowSample};
