//! Canonical content hashing over the serde data model.
//!
//! Scenario sweeps cache simulation results on disk keyed by *what was
//! simulated*: the processor configuration, the run parameters, the workload
//! class and (for trace replays) the trace fingerprint. The key must be a
//! pure function of the *content* of those values — not of incidental
//! representation details — or a re-serialized spec would silently miss (or
//! worse, poison) the cache. Two representational hazards matter in
//! practice:
//!
//! * **field order** — a struct gained a field, a scenario file lists keys
//!   in a different order, or a JSON object was rewritten by another tool;
//! * **number shape** — JSON has one number type, so `2.0_f64` prints as
//!   `2` and parses back as an unsigned integer, and a non-negative `i64`
//!   parses back as `u64`.
//!
//! [`canonicalize`] collapses both: map entries are sorted by key (stable,
//! so duplicate keys keep their relative order) and every number is
//! normalized to the smallest value class that represents it exactly
//! (integral finite floats in the exactly-representable range become
//! integers, non-negative signed integers become unsigned). Non-finite
//! floats normalize to `Null`, exactly as the JSON encoder emits them.
//! [`canonical_hash`] then folds the canonical tree into a 64-bit FNV-1a
//! digest over an unambiguous tagged byte encoding.
//!
//! The invariant the cache relies on (pinned by the canon proptests):
//! for any serializable `T`,
//!
//! ```text
//! canonical_hash_of(&t) == canonical_hash(&parse(serialize(t)))
//! ```
//!
//! and the hash is unchanged when any map's entries are reordered.
//!
//! # Example
//!
//! ```
//! use serde::Value;
//! use elsq_stats::canon::canonical_hash;
//!
//! let a = Value::Map(vec![
//!     ("x".into(), Value::U64(2)),
//!     ("y".into(), Value::F64(0.5)),
//! ]);
//! // Same content: fields reordered, integer written as a float.
//! let b = Value::Map(vec![
//!     ("y".into(), Value::F64(0.5)),
//!     ("x".into(), Value::F64(2.0)),
//! ]);
//! assert_eq!(canonical_hash(&a), canonical_hash(&b));
//! ```

use serde::{Serialize, Value};

/// Largest magnitude at which every integral `f64` is exactly one integer
/// (2^53): beyond it, normalizing a float to an integer could collide two
/// distinct floats, so larger integral floats stay floats.
const EXACT_INT_BOUND: f64 = 9_007_199_254_740_992.0;

/// Normalizes a value tree into its canonical form: map entries sorted by
/// key (stable), numbers collapsed into their smallest exact class, and
/// non-finite floats turned into `Null` (matching the JSON encoder).
pub fn canonicalize(value: &Value) -> Value {
    match value {
        Value::Null | Value::Bool(_) | Value::Str(_) | Value::U64(_) => value.clone(),
        Value::I64(i) => {
            if *i >= 0 {
                Value::U64(*i as u64)
            } else {
                Value::I64(*i)
            }
        }
        Value::F64(f) => canonicalize_float(*f),
        Value::Seq(items) => Value::Seq(items.iter().map(canonicalize).collect()),
        Value::Map(entries) => {
            let mut sorted: Vec<(String, Value)> = entries
                .iter()
                .map(|(k, v)| (k.clone(), canonicalize(v)))
                .collect();
            sorted.sort_by(|a, b| a.0.cmp(&b.0));
            Value::Map(sorted)
        }
    }
}

fn canonicalize_float(f: f64) -> Value {
    if !f.is_finite() {
        // The JSON encoder writes non-finite floats as `null`; hash them the
        // same way so encode→parse cannot change the key.
        return Value::Null;
    }
    if f.fract() == 0.0 && f.abs() <= EXACT_INT_BOUND {
        // An integral float in the exactly-representable range prints
        // without a decimal point and parses back as an integer; normalize
        // to the integer class up front. (-0.0 lands here and becomes 0.)
        if f >= 0.0 {
            return Value::U64(f as u64);
        }
        return Value::I64(f as i64);
    }
    Value::F64(f)
}

/// 64-bit FNV-1a running state.
#[derive(Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Self {
        Self(Self::OFFSET)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }
}

/// Type tags of the canonical byte encoding. Every value starts with its
/// tag, so `[1, 2]` and `["1, 2"]` cannot hash alike.
mod tag {
    pub const NULL: u8 = 0;
    pub const BOOL: u8 = 1;
    pub const UINT: u8 = 2;
    pub const NEG_INT: u8 = 3;
    pub const FLOAT: u8 = 4;
    pub const STR: u8 = 5;
    pub const SEQ: u8 = 6;
    pub const MAP: u8 = 7;
}

fn hash_canonical(value: &Value, h: &mut Fnv) {
    match value {
        Value::Null => h.write(&[tag::NULL]),
        Value::Bool(b) => h.write(&[tag::BOOL, u8::from(*b)]),
        Value::U64(u) => {
            h.write(&[tag::UINT]);
            h.write_u64(*u);
        }
        Value::I64(i) => {
            // canonicalize() only leaves negative values in this class.
            h.write(&[tag::NEG_INT]);
            h.write_u64(*i as u64);
        }
        Value::F64(f) => {
            h.write(&[tag::FLOAT]);
            h.write_u64(f.to_bits());
        }
        Value::Str(s) => {
            h.write(&[tag::STR]);
            h.write_u64(s.len() as u64);
            h.write(s.as_bytes());
        }
        Value::Seq(items) => {
            h.write(&[tag::SEQ]);
            h.write_u64(items.len() as u64);
            for item in items {
                hash_canonical(item, h);
            }
        }
        Value::Map(entries) => {
            h.write(&[tag::MAP]);
            h.write_u64(entries.len() as u64);
            for (key, val) in entries {
                h.write(&[tag::STR]);
                h.write_u64(key.len() as u64);
                h.write(key.as_bytes());
                hash_canonical(val, h);
            }
        }
    }
}

/// The canonical 64-bit content hash of a value tree: [`canonicalize`], then
/// FNV-1a over the tagged byte encoding.
pub fn canonical_hash(value: &Value) -> u64 {
    let mut h = Fnv::new();
    hash_canonical(&canonicalize(value), &mut h);
    h.0
}

/// [`canonical_hash`] of any serializable value.
pub fn canonical_hash_of<T: Serialize + ?Sized>(value: &T) -> u64 {
    canonical_hash(&value.to_value())
}

/// The fixed-width lowercase hex spelling of a hash, used in cache file
/// names (`point-<hex>.json`) and manifests.
pub fn hash_hex(hash: u64) -> String {
    format!("{hash:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(entries: &[(&str, Value)]) -> Value {
        Value::Map(
            entries
                .iter()
                .map(|(k, v)| ((*k).to_owned(), v.clone()))
                .collect(),
        )
    }

    #[test]
    fn map_key_order_is_irrelevant() {
        let a = map(&[("a", Value::U64(1)), ("b", Value::Bool(true))]);
        let b = map(&[("b", Value::Bool(true)), ("a", Value::U64(1))]);
        assert_eq!(canonical_hash(&a), canonical_hash(&b));
        // ... including in nested maps.
        let outer_a = map(&[("inner", a)]);
        let outer_b = map(&[("inner", b)]);
        assert_eq!(canonical_hash(&outer_a), canonical_hash(&outer_b));
    }

    #[test]
    fn number_classes_collapse() {
        assert_eq!(
            canonical_hash(&Value::F64(2.0)),
            canonical_hash(&Value::U64(2))
        );
        assert_eq!(
            canonical_hash(&Value::I64(7)),
            canonical_hash(&Value::U64(7))
        );
        assert_eq!(
            canonical_hash(&Value::F64(-3.0)),
            canonical_hash(&Value::I64(-3))
        );
        assert_eq!(
            canonical_hash(&Value::F64(-0.0)),
            canonical_hash(&Value::U64(0))
        );
        // Genuinely fractional values stay distinct floats.
        assert_ne!(
            canonical_hash(&Value::F64(2.5)),
            canonical_hash(&Value::U64(2))
        );
        // Beyond 2^53 integral floats stay floats (no lossy collapse).
        let big = 1.0e300;
        assert!(matches!(canonicalize(&Value::F64(big)), Value::F64(_)));
    }

    #[test]
    fn non_finite_floats_hash_like_null() {
        assert_eq!(
            canonical_hash(&Value::F64(f64::NAN)),
            canonical_hash(&Value::Null)
        );
        assert_eq!(
            canonical_hash(&Value::F64(f64::INFINITY)),
            canonical_hash(&Value::Null)
        );
    }

    #[test]
    fn containers_and_scalars_do_not_collide() {
        let values = [
            Value::Null,
            Value::Bool(false),
            Value::U64(0),
            Value::Str(String::new()),
            Value::Seq(vec![]),
            Value::Map(vec![]),
            Value::Seq(vec![Value::U64(0)]),
            Value::Str("0".into()),
        ];
        let mut hashes: Vec<u64> = values.iter().map(canonical_hash).collect();
        hashes.sort_unstable();
        hashes.dedup();
        assert_eq!(hashes.len(), values.len(), "tagged encoding collided");
    }

    #[test]
    fn string_content_is_length_prefixed() {
        // Without length prefixes ["ab","c"] and ["a","bc"] would concatenate
        // to the same byte stream.
        let a = Value::Seq(vec![Value::Str("ab".into()), Value::Str("c".into())]);
        let b = Value::Seq(vec![Value::Str("a".into()), Value::Str("bc".into())]);
        assert_ne!(canonical_hash(&a), canonical_hash(&b));
    }

    #[test]
    fn hash_of_serializable_matches_value_hash() {
        #[derive(serde::Serialize)]
        struct Demo {
            x: u64,
            y: f64,
        }
        let d = Demo { x: 4, y: 0.25 };
        assert_eq!(canonical_hash_of(&d), canonical_hash(&d.to_value()));
    }

    #[test]
    fn hex_is_fixed_width_lowercase() {
        assert_eq!(hash_hex(0xab), "00000000000000ab");
        assert_eq!(hash_hex(u64::MAX), "ffffffffffffffff");
    }

    #[test]
    fn json_round_trip_preserves_the_hash() {
        let v = map(&[
            ("ipc", Value::F64(2.0)),
            ("name", Value::Str("fmc-hash".into())),
            ("rob", Value::U64(64)),
            ("frac", Value::F64(0.375)),
            ("neg", Value::I64(-12)),
            ("opt", Value::Null),
            (
                "seq",
                Value::Seq(vec![Value::F64(1.0), Value::F64(1.5), Value::Bool(true)]),
            ),
        ]);
        let text = serde_json::to_string(&v).unwrap();
        let back = serde_json::parse_value(&text).unwrap();
        assert_eq!(canonical_hash(&v), canonical_hash(&back));
    }
}
