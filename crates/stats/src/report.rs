//! Structured experiment reports: tables, cells and run parameters.
//!
//! Every experiment produces a [`Report`] — a titled collection of
//! [`Table`]s plus the [`ExperimentParams`] it ran with — which renders as
//! aligned plain text, RFC-4180 CSV, or (via `serde`) JSON. Table cells are
//! [`Cell`]s that keep the raw `f64` value alongside the formatted string,
//! so machine consumers can diff figures at full precision while the text
//! output stays aligned with the numbers recorded in `docs/EXPERIMENTS.md`.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::sampling::SamplingSpec;

/// Parameters shared by every experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExperimentParams {
    /// Committed instructions simulated per workload. Under a sampling
    /// spec this is the *total* instruction budget per workload
    /// (fast-forward + warm-up + detailed windows).
    pub commits: u64,
    /// Seed for the workload generators.
    pub seed: u64,
    /// Systematic-sampling specification; `None` runs the full detailed
    /// cycle loop over every instruction.
    pub sample: Option<SamplingSpec>,
}

// Hand-written (not derived) so the `sample` key is *omitted* when absent:
// the canonical hash does not drop explicit nulls, and every pre-sampling
// report/cache hash must stay byte-identical for full (unsampled) runs.
impl Serialize for ExperimentParams {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            ("commits".to_owned(), self.commits.to_value()),
            ("seed".to_owned(), self.seed.to_value()),
        ];
        if let Some(sample) = &self.sample {
            fields.push(("sample".to_owned(), sample.to_value()));
        }
        serde::Value::Map(fields)
    }
}

impl Deserialize for ExperimentParams {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let commits = u64::from_value(serde::map_field(value, "commits")?)?;
        let seed = u64::from_value(serde::map_field(value, "seed")?)?;
        let sample = match value {
            serde::Value::Map(_) => match value.get("sample") {
                Some(v) => Option::<SamplingSpec>::from_value(v)?,
                None => None,
            },
            other => return Err(serde::Error::expected("map", other)),
        };
        Ok(Self {
            commits,
            seed,
            sample,
        })
    }
}

impl ExperimentParams {
    /// A quick configuration for unit tests, doc examples and `--quick` CLI
    /// runs.
    pub fn quick() -> Self {
        Self {
            commits: 5_000,
            seed: 7,
            sample: None,
        }
    }

    /// The default configuration used by the figure-regeneration
    /// experiments: large enough for stable averages, small enough to finish
    /// in seconds per configuration.
    pub fn standard() -> Self {
        Self {
            commits: 60_000,
            seed: 7,
            sample: None,
        }
    }

    /// A reduced configuration for the wider parameter sweeps.
    pub fn sweep() -> Self {
        Self {
            commits: 30_000,
            seed: 7,
            sample: None,
        }
    }

    /// Builder-style: the same parameters under a sampling spec.
    pub fn with_sample(mut self, sample: SamplingSpec) -> Self {
        self.sample = Some(sample);
        self
    }
}

impl Default for ExperimentParams {
    fn default() -> Self {
        Self::standard()
    }
}

/// One table cell: a formatted string plus, for numeric cells, the raw
/// value it was formatted from.
///
/// # Example
///
/// ```
/// use elsq_stats::report::Cell;
///
/// let c = Cell::f(1.2345);
/// assert_eq!(c.text, "1.234");
/// assert_eq!(c.value, Some(1.2345));
/// assert_eq!(Cell::text("scheme").value, None);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cell {
    /// The formatted string shown in text/CSV output.
    pub text: String,
    /// The raw value for numeric cells, preserved at full precision.
    pub value: Option<f64>,
}

impl Cell {
    /// A plain text cell (labels, configuration names).
    pub fn text(text: impl Into<String>) -> Self {
        Self {
            text: text.into(),
            value: None,
        }
    }

    /// A float cell formatted with [`fmt_f`] (3 decimals, the paper's figure
    /// precision).
    pub fn f(value: f64) -> Self {
        Self {
            text: fmt_f(value),
            value: Some(value),
        }
    }

    /// A count cell formatted in millions with [`fmt_millions`] (Table 2
    /// unit). The raw value keeps the same millions scale as the text.
    pub fn millions(count: u64) -> Self {
        Self {
            text: fmt_millions(count),
            value: Some(count as f64 / 1.0e6),
        }
    }

    /// An integer cell.
    pub fn int(value: u64) -> Self {
        Self {
            text: value.to_string(),
            value: Some(value as f64),
        }
    }

    /// A cell with an explicit text/value pair (custom formatting).
    pub fn new(text: impl Into<String>, value: f64) -> Self {
        Self {
            text: text.into(),
            value: Some(value),
        }
    }

    /// A sampled-estimate cell: mean ± 95% confidence half-width with the
    /// window count, e.g. `1.234 ±0.012 (n=24)`. The raw value is the mean
    /// so figure diffing and suite bounds keep working on sampled columns.
    pub fn ci(mean: f64, half_width: f64, windows: usize) -> Self {
        Self {
            text: format!("{} ±{} (n={windows})", fmt_f(mean), fmt_f(half_width)),
            value: Some(mean),
        }
    }

    /// The raw value of a numeric cell, falling back to parsing the text.
    pub fn num(&self) -> Option<f64> {
        self.value.or_else(|| self.text.parse().ok())
    }

    /// Whether this cell is a degraded `FAILED (<site>)` marker — the text
    /// a sweep report renders for a grid point whose simulation failed.
    /// Such a cell carries no number and must never silently satisfy (or
    /// match) an assertion on the column's data.
    pub fn is_failed(&self) -> bool {
        self.value.is_none() && self.text.starts_with("FAILED (")
    }
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

impl PartialEq<str> for Cell {
    fn eq(&self, other: &str) -> bool {
        self.text == other
    }
}

impl PartialEq<&str> for Cell {
    fn eq(&self, other: &&str) -> bool {
        self.text == *other
    }
}

/// A simple column-aligned table.
///
/// # Example
///
/// ```
/// use elsq_stats::report::{Cell, Table};
///
/// let mut t = Table::new("Speed-up over OoO-64", &["scheme", "SPEC INT", "SPEC FP"]);
/// t.row_cells(vec![Cell::text("Central LSQ"), Cell::f(1.19), Cell::f(2.08)]);
/// t.row(&["ELSQ hash + SQM", "1.19", "2.10"]);
/// let text = t.render();
/// assert!(text.contains("Central LSQ"));
/// let csv = t.to_csv();
/// assert!(csv.starts_with("scheme,SPEC INT,SPEC FP"));
/// assert_eq!(t.rows()[0][1].value, Some(1.19));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<Cell>>,
}

impl Table {
    /// Creates an empty table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row of plain text cells.
    ///
    /// # Panics
    ///
    /// Panics if the row length does not match the number of headers.
    pub fn row(&mut self, cells: &[&str]) -> &mut Self {
        self.row_cells(cells.iter().map(|s| Cell::text(*s)).collect())
    }

    /// Appends a row of already-owned text cells (e.g. formatted numbers
    /// without raw values).
    ///
    /// # Panics
    ///
    /// Panics if the row length does not match the number of headers.
    pub fn row_owned(&mut self, cells: Vec<String>) -> &mut Self {
        self.row_cells(cells.into_iter().map(Cell::text).collect())
    }

    /// Appends a row of [`Cell`]s, the value-preserving form experiments use.
    ///
    /// # Panics
    ///
    /// Panics if the row length does not match the number of headers.
    pub fn row_cells(&mut self, cells: Vec<Cell>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row has {} cells but table has {} columns",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Access to the raw rows (for assertions in tests and figure diffing).
    pub fn rows(&self) -> &[Vec<Cell>] {
        &self.rows
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if cell.text.len() > widths[i] {
                    widths[i] = cell.text.len();
                }
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[&str], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cell, width = widths[i]));
            }
            line.push('\n');
            line
        };
        let headers: Vec<&str> = self.headers.iter().map(String::as_str).collect();
        out.push_str(&fmt_row(&headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<&str> = row.iter().map(|c| c.text.as_str()).collect();
            out.push_str(&fmt_row(&cells, &widths));
        }
        out
    }

    /// Renders the table as RFC-4180 CSV: headers first, comma separated;
    /// cells containing commas, quotes or line breaks are quoted and inner
    /// quotes doubled.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let encode_row = |cells: &[&str]| -> String {
            cells
                .iter()
                .map(|c| csv_escape(c))
                .collect::<Vec<_>>()
                .join(",")
        };
        let headers: Vec<&str> = self.headers.iter().map(String::as_str).collect();
        out.push_str(&encode_row(&headers));
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<&str> = row.iter().map(|c| c.text.as_str()).collect();
            out.push_str(&encode_row(&cells));
            out.push('\n');
        }
        out
    }
}

/// Quotes a CSV cell per RFC 4180 when it contains a comma, a double quote
/// or a line break; passes it through unchanged otherwise.
fn csv_escape(cell: &str) -> String {
    if cell.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_owned()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// The structured result of running one experiment: identification, the
/// parameters used, every table produced, and the wall-clock time spent.
///
/// Serializes via `serde` to JSON for machine-readable figure diffing; the
/// per-cell raw values survive the round trip.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// Stable experiment identifier (`fig7`, `table2`, ...).
    pub id: String,
    /// Human-readable experiment title.
    pub title: String,
    /// The parameters the experiment ran with.
    pub params: ExperimentParams,
    /// Every table the experiment produced, in presentation order.
    pub tables: Vec<Table>,
    /// Wall-clock time of the run in milliseconds (not deterministic; 0.0
    /// when reports are compared for figure diffing).
    pub wall_time_ms: f64,
}

impl Report {
    /// Creates an empty report.
    pub fn new(id: impl Into<String>, title: impl Into<String>, params: ExperimentParams) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            params,
            tables: Vec::new(),
            wall_time_ms: 0.0,
        }
    }

    /// Appends a table.
    pub fn push_table(&mut self, table: Table) -> &mut Self {
        self.tables.push(table);
        self
    }

    /// Builder-style: appends a table.
    pub fn with_table(mut self, table: Table) -> Self {
        self.tables.push(table);
        self
    }

    /// Renders the report header plus every table as plain text.
    pub fn render(&self) -> String {
        let sample = match &self.params.sample {
            Some(spec) => format!(", sample={spec}"),
            None => String::new(),
        };
        let mut out = format!(
            "# {} — {} (commits={}, seed={}{sample})\n",
            self.id, self.title, self.params.commits, self.params.seed
        );
        for table in &self.tables {
            out.push('\n');
            out.push_str(&table.render());
        }
        out
    }

    /// Renders every table as CSV, each preceded by a `# title` comment line
    /// and separated by blank lines.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        for (i, table) in self.tables.iter().enumerate() {
            if i > 0 {
                out.push('\n');
            }
            out.push_str(&format!("# {}\n", table.title()));
            out.push_str(&table.to_csv());
        }
        out
    }

    /// Clears the wall-clock measurement (for byte-exact report diffing).
    pub fn without_wall_time(mut self) -> Self {
        self.wall_time_ms = 0.0;
        self
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats a float with 3 significant decimals, the precision used in the
/// paper's figures.
pub fn fmt_f(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a count in millions with 3 decimals (Table 2 unit).
pub fn fmt_millions(x: u64) -> String {
    format!("{:.3}", x as f64 / 1.0e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns_and_includes_all_cells() {
        let mut t = Table::new("demo", &["a", "long header", "c"]);
        t.row(&["1", "2", "3"]);
        t.row(&["wide cell", "x", "y"]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("wide cell"));
        assert!(s.contains("long header"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_output() {
        let mut t = Table::new("demo", &["x", "y"]);
        t.row(&["1", "2"]);
        assert_eq!(t.to_csv(), "x,y\n1,2\n");
    }

    #[test]
    fn csv_quotes_special_cells_per_rfc_4180() {
        let mut t = Table::new("demo", &["name", "note"]);
        t.row(&["a,b", "he said \"hi\""]);
        t.row(&["line\nbreak", "plain"]);
        assert_eq!(
            t.to_csv(),
            "name,note\n\"a,b\",\"he said \"\"hi\"\"\"\n\"line\nbreak\",plain\n"
        );
    }

    #[test]
    #[should_panic(expected = "columns")]
    fn mismatched_row_panics() {
        let mut t = Table::new("demo", &["x", "y"]);
        t.row(&["only one"]);
    }

    #[test]
    fn number_formatting() {
        assert_eq!(fmt_f(1.2345), "1.234");
        assert_eq!(fmt_millions(27_006_000), "27.006");
    }

    #[test]
    fn display_matches_render() {
        let mut t = Table::new("d", &["h"]);
        t.row(&["v"]);
        assert_eq!(format!("{t}"), t.render());
    }

    #[test]
    fn cells_preserve_raw_values() {
        let mut t = Table::new("d", &["a", "b", "c"]);
        t.row_cells(vec![Cell::f(2.0), Cell::millions(1_000_000), Cell::int(7)]);
        let row = &t.rows()[0];
        assert_eq!(row[0], "2.000");
        assert_eq!(row[0].value, Some(2.0));
        assert_eq!(row[1].text, "1.000");
        assert_eq!(row[1].value, Some(1.0));
        assert_eq!(row[2].num(), Some(7.0));
        // Text-only cells fall back to parsing.
        assert_eq!(Cell::text("1.5").num(), Some(1.5));
        assert_eq!(Cell::text("n/a").num(), None);
    }

    #[test]
    fn failed_markers_are_detected_and_numbers_are_not() {
        assert!(Cell::text("FAILED (lsq-alloc)").is_failed());
        assert!(!Cell::text("scheme").is_failed());
        assert!(!Cell::f(1.0).is_failed());
        // A numeric cell whose *text* happens to start with the marker is
        // still a number (it carries a raw value), not a failure.
        assert!(!Cell::new("FAILED (never-rendered-like-this)", 1.0).is_failed());
    }

    #[test]
    fn row_owned_accepts_formatted_cells() {
        let mut t = Table::new("d", &["a", "b"]);
        t.row_owned(vec![fmt_f(2.0), fmt_millions(1_000_000)]);
        assert_eq!(t.rows()[0][0], "2.000");
        assert_eq!(t.rows()[0][1], "1.000");
        // Ownership conversion loses the raw value by construction.
        assert_eq!(t.rows()[0][0].value, None);
    }

    #[test]
    fn experiment_params_presets_are_ordered_by_cost() {
        assert!(ExperimentParams::quick().commits <= ExperimentParams::sweep().commits);
        assert!(ExperimentParams::sweep().commits <= ExperimentParams::standard().commits);
        assert_eq!(ExperimentParams::default(), ExperimentParams::standard());
    }

    #[test]
    fn report_renders_header_tables_and_csv() {
        let mut table = Table::new("t1", &["x"]);
        table.row_cells(vec![Cell::f(0.5)]);
        let report = Report::new("fig0", "demo figure", ExperimentParams::quick())
            .with_table(table.clone())
            .with_table(table);
        let text = report.render();
        assert!(text.starts_with("# fig0 — demo figure (commits=5000, seed=7)"));
        assert_eq!(text.matches("== t1 ==").count(), 2);
        let csv = report.to_csv();
        assert_eq!(csv.matches("# t1\n").count(), 2);
        assert!(csv.contains("x\n0.500\n"));
    }

    #[test]
    fn ci_cells_render_mean_half_width_and_count() {
        let c = Cell::ci(1.2345, 0.0123, 24);
        assert_eq!(c.text, "1.234 ±0.012 (n=24)");
        assert_eq!(c.value, Some(1.2345));
        assert!(!c.is_failed());
    }

    #[test]
    fn params_serde_omits_an_absent_sample() {
        use crate::sampling::SamplingSpec;
        let full = ExperimentParams::quick();
        let json = serde_json::to_string(&full).unwrap();
        assert!(!json.contains("sample"), "{json}");
        let back: ExperimentParams = serde_json::from_str(&json).unwrap();
        assert_eq!(back, full);
        // ... so pre-sampling JSON (no `sample` key) still decodes ...
        let legacy: ExperimentParams =
            serde_json::from_str("{\"commits\": 5000, \"seed\": 7}").unwrap();
        assert_eq!(legacy, full);
        // ... while sampled params round-trip with the key present.
        let sampled = full.with_sample(SamplingSpec::parse("1000:100:50").unwrap());
        let json = serde_json::to_string(&sampled).unwrap();
        assert!(json.contains("sample"), "{json}");
        let back: ExperimentParams = serde_json::from_str(&json).unwrap();
        assert_eq!(back, sampled);
    }

    #[test]
    fn sampled_report_headers_name_the_spec() {
        use crate::sampling::SamplingSpec;
        let params =
            ExperimentParams::quick().with_sample(SamplingSpec::parse("1000:100").unwrap());
        let r = Report::new("s", "sampled", params);
        assert!(r.render().contains("sample=1000:100:0"), "{}", r.render());
        let full = Report::new("f", "full", ExperimentParams::quick());
        assert!(!full.render().contains("sample"));
    }

    #[test]
    fn report_wall_time_can_be_cleared() {
        let mut r = Report::new("a", "b", ExperimentParams::quick());
        r.wall_time_ms = 12.5;
        assert_eq!(r.without_wall_time().wall_time_ms, 0.0);
    }
}
