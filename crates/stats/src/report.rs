//! Plain-text and CSV table rendering for experiment reports.
//!
//! Every figure/table regeneration binary prints its results through
//! [`Table`] so the output is consistent, aligned and easy to diff against
//! the numbers recorded in `EXPERIMENTS.md`.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A simple column-aligned table.
///
/// # Example
///
/// ```
/// use elsq_stats::report::Table;
///
/// let mut t = Table::new("Speed-up over OoO-64", &["scheme", "SPEC INT", "SPEC FP"]);
/// t.row(&["Central LSQ", "1.19", "2.08"]);
/// t.row(&["ELSQ hash + SQM", "1.19", "2.10"]);
/// let text = t.render();
/// assert!(text.contains("Central LSQ"));
/// let csv = t.to_csv();
/// assert!(csv.starts_with("scheme,SPEC INT,SPEC FP"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row of string cells.
    ///
    /// # Panics
    ///
    /// Panics if the row length does not match the number of headers.
    pub fn row(&mut self, cells: &[&str]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row has {} cells but table has {} columns",
            cells.len(),
            self.headers.len()
        );
        self.rows
            .push(cells.iter().map(|s| (*s).to_owned()).collect());
        self
    }

    /// Appends a row of already-owned cells (e.g. formatted numbers).
    ///
    /// # Panics
    ///
    /// Panics if the row length does not match the number of headers.
    pub fn row_owned(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
        self
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Access to the raw rows (for assertions in tests).
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if cell.len() > widths[i] {
                    widths[i] = cell.len();
                }
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cell, width = widths[i]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Renders the table as CSV (headers first, comma separated, no quoting —
    /// cells produced by the harness never contain commas).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats a float with 3 significant decimals, the precision used in the
/// paper's figures.
pub fn fmt_f(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a count in millions with 3 decimals (Table 2 unit).
pub fn fmt_millions(x: u64) -> String {
    format!("{:.3}", x as f64 / 1.0e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns_and_includes_all_cells() {
        let mut t = Table::new("demo", &["a", "long header", "c"]);
        t.row(&["1", "2", "3"]);
        t.row(&["wide cell", "x", "y"]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("wide cell"));
        assert!(s.contains("long header"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_output() {
        let mut t = Table::new("demo", &["x", "y"]);
        t.row(&["1", "2"]);
        assert_eq!(t.to_csv(), "x,y\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "columns")]
    fn mismatched_row_panics() {
        let mut t = Table::new("demo", &["x", "y"]);
        t.row(&["only one"]);
    }

    #[test]
    fn number_formatting() {
        assert_eq!(fmt_f(1.2345), "1.234");
        assert_eq!(fmt_millions(27_006_000), "27.006");
    }

    #[test]
    fn display_matches_render() {
        let mut t = Table::new("d", &["h"]);
        t.row(&["v"]);
        assert_eq!(format!("{t}"), t.render());
    }

    #[test]
    fn row_owned_accepts_formatted_cells() {
        let mut t = Table::new("d", &["a", "b"]);
        t.row_owned(vec![fmt_f(2.0), fmt_millions(1_000_000)]);
        assert_eq!(t.rows()[0], vec!["2.000".to_owned(), "1.000".to_owned()]);
    }
}
