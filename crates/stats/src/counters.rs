//! Event counters shared between LSQ and processor models.
//!
//! Two counter groups exist:
//!
//! * [`LsqAccessCounters`] — the per-structure access counts that make up
//!   Table 2 of the paper (HL-LQ, HL-SQ, LL-LQ, LL-SQ, ERT, SSBF, network
//!   round-trips, cache accesses) plus auxiliary events used by other
//!   figures (false-positive remote searches for Figure 8a, load
//!   re-executions for Figure 10, line-locking activity for Section 6).
//! * [`SimCounters`] — whole-simulation counters (cycles, commits, squashes,
//!   low-locality activity) that IPC, Figure 1 and Figure 11 are derived
//!   from.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign};

/// Scale factor applied when reporting counts "per 100 million committed
/// instructions", the unit used throughout the paper.
pub const PER_100M: u64 = 100_000_000;

/// Access counts for every LSQ-related structure (Table 2 columns).
///
/// All fields are raw event counts for the simulated interval; use
/// [`LsqAccessCounters::scaled_per_100m`] to convert them to the paper's
/// normalization.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LsqAccessCounters {
    /// Associative searches of the high-locality Load Queue (by stores
    /// checking for ordering violations).
    pub hl_lq_searches: u64,
    /// Associative searches of the high-locality Store Queue (by loads
    /// looking for forwarding).
    pub hl_sq_searches: u64,
    /// Associative searches of low-locality (epoch) Load Queues.
    pub ll_lq_searches: u64,
    /// Associative searches of low-locality (epoch) Store Queues.
    pub ll_sq_searches: u64,
    /// Epoch Resolution Table lookups (either line-based or hash-based).
    pub ert_lookups: u64,
    /// Store Sequence Bloom Filter lookups (SVW re-execution models only).
    pub ssbf_lookups: u64,
    /// Store Queue Mirror lookups (when the SQM is implemented).
    pub sqm_lookups: u64,
    /// CP <-> MP network round-trips caused by remote searches or remote
    /// forwarding.
    pub roundtrips: u64,
    /// Data-cache accesses (loads, store commits and re-executions).
    pub cache_accesses: u64,
    /// Remote epoch searches triggered by the ERT that found no matching
    /// store/load (false positives, Figure 8a).
    pub ert_false_positives: u64,
    /// Remote epoch searches triggered by the ERT that did find a match.
    pub ert_true_positives: u64,
    /// Store-to-load forwardings satisfied within the local epoch (local
    /// disambiguation hit).
    pub local_forwards: u64,
    /// Store-to-load forwardings satisfied from a remote epoch or from the
    /// HL-SQ across levels (global disambiguation).
    pub global_forwards: u64,
    /// Store-load ordering violations detected (each squashes the window
    /// from the violating load).
    pub order_violations: u64,
    /// Loads re-executed at commit (SVW models, Figure 10).
    pub load_reexecutions: u64,
    /// L1 lines locked on behalf of the line-based ERT (Section 6).
    pub lines_locked: u64,
    /// Squashes caused by failure to lock a cache line (line-based ERT,
    /// Section 3.4).
    pub lock_conflict_squashes: u64,
    /// Insertions stalled because a line could not be locked (line-based ERT).
    pub lock_conflict_stalls: u64,
    /// Migration stalls caused by restricted SAC/LAC disambiguation.
    pub restricted_stalls: u64,
}

impl LsqAccessCounters {
    /// Returns a copy of the counters linearly rescaled as if `committed`
    /// instructions were 100 million, i.e. the paper's "per 100M" unit.
    ///
    /// # Panics
    ///
    /// Panics if `committed` is zero.
    pub fn scaled_per_100m(&self, committed: u64) -> LsqAccessCounters {
        assert!(
            committed > 0,
            "cannot scale counters for zero committed instructions"
        );
        let scale = |v: u64| -> u64 { ((v as u128 * PER_100M as u128) / committed as u128) as u64 };
        LsqAccessCounters {
            hl_lq_searches: scale(self.hl_lq_searches),
            hl_sq_searches: scale(self.hl_sq_searches),
            ll_lq_searches: scale(self.ll_lq_searches),
            ll_sq_searches: scale(self.ll_sq_searches),
            ert_lookups: scale(self.ert_lookups),
            ssbf_lookups: scale(self.ssbf_lookups),
            sqm_lookups: scale(self.sqm_lookups),
            roundtrips: scale(self.roundtrips),
            cache_accesses: scale(self.cache_accesses),
            ert_false_positives: scale(self.ert_false_positives),
            ert_true_positives: scale(self.ert_true_positives),
            local_forwards: scale(self.local_forwards),
            global_forwards: scale(self.global_forwards),
            order_violations: scale(self.order_violations),
            load_reexecutions: scale(self.load_reexecutions),
            lines_locked: scale(self.lines_locked),
            lock_conflict_squashes: scale(self.lock_conflict_squashes),
            lock_conflict_stalls: scale(self.lock_conflict_stalls),
            restricted_stalls: scale(self.restricted_stalls),
        }
    }

    /// Total number of associative LSQ searches across both levels.
    pub fn total_lsq_searches(&self) -> u64 {
        self.hl_lq_searches + self.hl_sq_searches + self.ll_lq_searches + self.ll_sq_searches
    }

    /// Fraction of ERT-directed remote searches that were useless
    /// (false-positive rate of the global filter). Returns `None` when the
    /// filter never fired.
    pub fn ert_false_positive_rate(&self) -> Option<f64> {
        let total = self.ert_false_positives + self.ert_true_positives;
        if total == 0 {
            None
        } else {
            Some(self.ert_false_positives as f64 / total as f64)
        }
    }
}

impl Add for LsqAccessCounters {
    type Output = LsqAccessCounters;
    fn add(mut self, rhs: LsqAccessCounters) -> LsqAccessCounters {
        self += rhs;
        self
    }
}

impl AddAssign for LsqAccessCounters {
    fn add_assign(&mut self, rhs: LsqAccessCounters) {
        self.hl_lq_searches += rhs.hl_lq_searches;
        self.hl_sq_searches += rhs.hl_sq_searches;
        self.ll_lq_searches += rhs.ll_lq_searches;
        self.ll_sq_searches += rhs.ll_sq_searches;
        self.ert_lookups += rhs.ert_lookups;
        self.ssbf_lookups += rhs.ssbf_lookups;
        self.sqm_lookups += rhs.sqm_lookups;
        self.roundtrips += rhs.roundtrips;
        self.cache_accesses += rhs.cache_accesses;
        self.ert_false_positives += rhs.ert_false_positives;
        self.ert_true_positives += rhs.ert_true_positives;
        self.local_forwards += rhs.local_forwards;
        self.global_forwards += rhs.global_forwards;
        self.order_violations += rhs.order_violations;
        self.load_reexecutions += rhs.load_reexecutions;
        self.lines_locked += rhs.lines_locked;
        self.lock_conflict_squashes += rhs.lock_conflict_squashes;
        self.lock_conflict_stalls += rhs.lock_conflict_stalls;
        self.restricted_stalls += rhs.restricted_stalls;
    }
}

/// Whole-simulation counters collected by the processor models.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimCounters {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Committed (correct-path) instructions.
    pub committed: u64,
    /// Committed loads.
    pub committed_loads: u64,
    /// Committed stores.
    pub committed_stores: u64,
    /// Fetched instructions including wrong-path.
    pub fetched: u64,
    /// Wrong-path instructions fetched and later squashed.
    pub wrong_path_fetched: u64,
    /// Instructions squashed for any reason (mispredict, violation, lock
    /// conflict, exception recovery).
    pub squashed: u64,
    /// Branch mispredictions resolved.
    pub branch_mispredicts: u64,
    /// Cycles in which the Memory Processor (LL-LSQ and ERT) was completely
    /// idle and could be power gated (Figure 11).
    pub ll_idle_cycles: u64,
    /// Cycles in which at least one epoch / memory engine was active.
    pub ll_active_cycles: u64,
    /// Sum over committed memory instructions of the decode-to-address
    /// calculation distance in cycles (Figure 1 average).
    pub addr_calc_distance_sum: u64,
    /// Number of epochs allocated over the run (for average epoch occupancy).
    pub epochs_allocated: u64,
}

impl SimCounters {
    /// Committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Fraction of cycles in which the low-locality machinery was idle
    /// (Figure 11's "LL-LSQ inactivity cycles").
    pub fn ll_idle_fraction(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.ll_idle_cycles as f64 / self.cycles as f64
        }
    }

    /// Mean decode-to-address-calculation distance over committed memory
    /// instructions, in cycles.
    pub fn mean_addr_calc_distance(&self) -> f64 {
        let mem = self.committed_loads + self.committed_stores;
        if mem == 0 {
            0.0
        } else {
            self.addr_calc_distance_sum as f64 / mem as f64
        }
    }
}

impl AddAssign for SimCounters {
    fn add_assign(&mut self, rhs: SimCounters) {
        self.cycles += rhs.cycles;
        self.committed += rhs.committed;
        self.committed_loads += rhs.committed_loads;
        self.committed_stores += rhs.committed_stores;
        self.fetched += rhs.fetched;
        self.wrong_path_fetched += rhs.wrong_path_fetched;
        self.squashed += rhs.squashed;
        self.branch_mispredicts += rhs.branch_mispredicts;
        self.ll_idle_cycles += rhs.ll_idle_cycles;
        self.ll_active_cycles += rhs.ll_active_cycles;
        self.addr_calc_distance_sum += rhs.addr_calc_distance_sum;
        self.epochs_allocated += rhs.epochs_allocated;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_to_100m_is_linear() {
        let mut c = LsqAccessCounters::default();
        c.hl_sq_searches = 500;
        c.ert_lookups = 250;
        let s = c.scaled_per_100m(1_000_000);
        assert_eq!(s.hl_sq_searches, 50_000);
        assert_eq!(s.ert_lookups, 25_000);
    }

    #[test]
    #[should_panic(expected = "zero committed")]
    fn scaling_zero_commits_panics() {
        LsqAccessCounters::default().scaled_per_100m(0);
    }

    #[test]
    fn counters_add() {
        let mut a = LsqAccessCounters::default();
        a.roundtrips = 3;
        a.local_forwards = 2;
        let mut b = LsqAccessCounters::default();
        b.roundtrips = 4;
        b.global_forwards = 1;
        let c = a + b;
        assert_eq!(c.roundtrips, 7);
        assert_eq!(c.local_forwards, 2);
        assert_eq!(c.global_forwards, 1);
    }

    #[test]
    fn false_positive_rate() {
        let mut c = LsqAccessCounters::default();
        assert!(c.ert_false_positive_rate().is_none());
        c.ert_false_positives = 1;
        c.ert_true_positives = 3;
        assert!((c.ert_false_positive_rate().unwrap() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn ipc_and_idle_fraction() {
        let mut s = SimCounters::default();
        assert_eq!(s.ipc(), 0.0);
        s.cycles = 1000;
        s.committed = 1500;
        s.ll_idle_cycles = 400;
        assert!((s.ipc() - 1.5).abs() < 1e-12);
        assert!((s.ll_idle_fraction() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn mean_addr_distance() {
        let mut s = SimCounters::default();
        assert_eq!(s.mean_addr_calc_distance(), 0.0);
        s.committed_loads = 3;
        s.committed_stores = 1;
        s.addr_calc_distance_sum = 40;
        assert!((s.mean_addr_calc_distance() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn sim_counters_accumulate() {
        let mut a = SimCounters::default();
        a.cycles = 10;
        a.committed = 20;
        let mut b = SimCounters::default();
        b.cycles = 5;
        b.squashed = 7;
        a += b;
        assert_eq!(a.cycles, 15);
        assert_eq!(a.committed, 20);
        assert_eq!(a.squashed, 7);
    }

    #[test]
    fn total_lsq_searches_sums_all_queues() {
        let c = LsqAccessCounters {
            hl_lq_searches: 1,
            hl_sq_searches: 2,
            ll_lq_searches: 3,
            ll_sq_searches: 4,
            ..Default::default()
        };
        assert_eq!(c.total_lsq_searches(), 10);
    }
}
