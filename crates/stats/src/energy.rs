//! Analytical per-access energy model.
//!
//! Section 6 of the paper estimates dynamic power by multiplying structure
//! access counts by CACTI-4.2 per-read energies at 70 nm. The two absolute
//! numbers the paper quotes are:
//!
//! * 2 KB ERT SRAM read: **0.00195 nJ**
//! * 32 KB 4-way L1 data cache read: **0.0958 nJ**
//!
//! We reproduce the *relative* energy comparison with a small analytical
//! model: energy per access grows roughly linearly with capacity for SRAM
//! arrays and is further multiplied by a CAM penalty for fully-associative
//! searches (every entry's tag comparator fires) and by the port count. The
//! model is calibrated so the two quoted data points are matched exactly.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use crate::counters::LsqAccessCounters;

/// ERT read energy quoted by the paper (nJ) for a 2 KB SRAM.
pub const ERT_2KB_READ_NJ: f64 = 0.001_95;
/// L1 cache read energy quoted by the paper (nJ) for a 32 KB 4-way cache.
pub const L1_32KB_READ_NJ: f64 = 0.095_8;

/// The kind of hardware structure, which determines how access energy scales
/// with capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StructureKind {
    /// Plain SRAM array indexed by address bits (ERT, SSBF, register files).
    Sram,
    /// Content-addressable memory searched associatively (LSQ banks, IQs).
    Cam,
    /// Set-associative cache (tag + data arrays).
    Cache,
}

/// Physical description of a structure for the energy model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StructureSpec {
    /// Kind of array.
    pub kind: StructureKind,
    /// Total capacity in bytes (entries × entry width).
    pub capacity_bytes: u64,
    /// Number of read/write ports.
    pub ports: u32,
}

impl StructureSpec {
    /// Convenience constructor for an SRAM of `capacity_bytes`.
    pub fn sram(capacity_bytes: u64, ports: u32) -> Self {
        Self {
            kind: StructureKind::Sram,
            capacity_bytes,
            ports,
        }
    }

    /// Convenience constructor for a CAM with `entries` of `entry_bytes` each.
    pub fn cam(entries: u64, entry_bytes: u64, ports: u32) -> Self {
        Self {
            kind: StructureKind::Cam,
            capacity_bytes: entries * entry_bytes,
            ports,
        }
    }

    /// Convenience constructor for a cache of `capacity_bytes`.
    pub fn cache(capacity_bytes: u64, ports: u32) -> Self {
        Self {
            kind: StructureKind::Cache,
            capacity_bytes,
            ports,
        }
    }
}

/// Analytical energy model calibrated against the paper's CACTI numbers.
///
/// # Example
///
/// ```
/// use elsq_stats::energy::{EnergyModel, StructureSpec};
///
/// let model = EnergyModel::default();
/// let ert = model.read_energy_nj(StructureSpec::sram(2048, 2));
/// // Matches the paper's quoted 0.00195 nJ for the dual-ported 2 KB ERT.
/// assert!((ert - 0.00195).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// nJ per byte of SRAM capacity per port (linear capacity term).
    sram_nj_per_byte_per_port: f64,
    /// Extra multiplicative cost of a CAM search relative to an SRAM read of
    /// the same capacity (every entry's comparators switch).
    cam_search_factor: f64,
    /// nJ per byte for set-associative caches (includes tag array and sense
    /// amps, hence the larger constant).
    cache_nj_per_byte_per_port: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        // Calibration:
        //   ERT: 2 KB SRAM, 2 ports -> 0.00195 nJ  => sram term = 0.00195/(2048*2)
        //   L1:  32 KB cache, 2 ports -> 0.0958 nJ => cache term = 0.0958/(32768*2)
        Self {
            sram_nj_per_byte_per_port: ERT_2KB_READ_NJ / (2048.0 * 2.0),
            cam_search_factor: 6.0,
            cache_nj_per_byte_per_port: L1_32KB_READ_NJ / (32768.0 * 2.0),
        }
    }
}

impl EnergyModel {
    /// Creates a model with explicit coefficients (mainly for sensitivity
    /// studies / ablations).
    pub fn with_coefficients(
        sram_nj_per_byte_per_port: f64,
        cam_search_factor: f64,
        cache_nj_per_byte_per_port: f64,
    ) -> Self {
        Self {
            sram_nj_per_byte_per_port,
            cam_search_factor,
            cache_nj_per_byte_per_port,
        }
    }

    /// Energy in nanojoules of one read/search of the given structure.
    pub fn read_energy_nj(&self, spec: StructureSpec) -> f64 {
        let bytes = spec.capacity_bytes as f64;
        let ports = spec.ports as f64;
        match spec.kind {
            StructureKind::Sram => self.sram_nj_per_byte_per_port * bytes * ports,
            StructureKind::Cam => {
                self.sram_nj_per_byte_per_port * bytes * ports * self.cam_search_factor
            }
            StructureKind::Cache => self.cache_nj_per_byte_per_port * bytes * ports,
        }
    }

    /// Computes the total LSQ-related dynamic energy (in nJ) of a run from
    /// its access counters and a description of each structure.
    ///
    /// Returns a per-structure breakdown keyed by a stable label, plus the
    /// total, so the experiment harness can print the Section 6 comparison.
    pub fn lsq_energy_breakdown(
        &self,
        counters: &LsqAccessCounters,
        specs: &LsqStructureSpecs,
    ) -> EnergyBreakdown {
        let mut by_structure = BTreeMap::new();
        let mut add = |name: &str, count: u64, spec: StructureSpec| {
            let nj = count as f64 * self.read_energy_nj(spec);
            by_structure.insert(name.to_owned(), nj);
        };
        add("hl_lq", counters.hl_lq_searches, specs.hl_lq);
        add("hl_sq", counters.hl_sq_searches, specs.hl_sq);
        add("ll_lq", counters.ll_lq_searches, specs.ll_lq_bank);
        add("ll_sq", counters.ll_sq_searches, specs.ll_sq_bank);
        add("ert", counters.ert_lookups, specs.ert);
        add("ssbf", counters.ssbf_lookups, specs.ssbf);
        add("sqm", counters.sqm_lookups, specs.sqm);
        add("dcache", counters.cache_accesses, specs.l1_cache);
        let total_nj = by_structure.values().sum();
        EnergyBreakdown {
            by_structure,
            total_nj,
        }
    }
}

/// Specifications for every LSQ-related structure, used by
/// [`EnergyModel::lsq_energy_breakdown`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LsqStructureSpecs {
    /// High-locality load queue (CAM).
    pub hl_lq: StructureSpec,
    /// High-locality store queue (CAM).
    pub hl_sq: StructureSpec,
    /// One low-locality load-queue bank (CAM); searches touch one bank.
    pub ll_lq_bank: StructureSpec,
    /// One low-locality store-queue bank (CAM).
    pub ll_sq_bank: StructureSpec,
    /// Epoch Resolution Table (SRAM).
    pub ert: StructureSpec,
    /// Store Sequence Bloom Filter (SRAM).
    pub ssbf: StructureSpec,
    /// Store Queue Mirror (CAM replica of the LL-SQs near the CP).
    pub sqm: StructureSpec,
    /// L1 data cache.
    pub l1_cache: StructureSpec,
}

impl Default for LsqStructureSpecs {
    fn default() -> Self {
        // Entry widths: an LSQ entry carries a 40-bit address + size + data
        // (8 B) + control; we round to 16 bytes. ERT = 2 KB per table as in
        // the paper (load + store tables accounted separately by the
        // harness), SSBF = 1024 x 16-bit entries = 2 KB.
        Self {
            hl_lq: StructureSpec::cam(32, 16, 1),
            hl_sq: StructureSpec::cam(24, 16, 2),
            ll_lq_bank: StructureSpec::cam(64, 16, 1),
            ll_sq_bank: StructureSpec::cam(32, 16, 1),
            ert: StructureSpec::sram(2048, 2),
            ssbf: StructureSpec::sram(2048, 2),
            sqm: StructureSpec::cam(32 * 16, 16, 1),
            l1_cache: StructureSpec::cache(32 * 1024, 2),
        }
    }
}

/// Per-structure energy totals produced by
/// [`EnergyModel::lsq_energy_breakdown`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Energy per structure, in nanojoules, keyed by structure label.
    pub by_structure: BTreeMap<String, f64>,
    /// Sum of all structures, in nanojoules.
    pub total_nj: f64,
}

impl EnergyBreakdown {
    /// Energy of a single structure by label, or 0.0 if absent.
    pub fn of(&self, name: &str) -> f64 {
        self.by_structure.get(name).copied().unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_matches_paper_numbers() {
        let m = EnergyModel::default();
        let ert = m.read_energy_nj(StructureSpec::sram(2048, 2));
        let l1 = m.read_energy_nj(StructureSpec::cache(32 * 1024, 2));
        assert!((ert - ERT_2KB_READ_NJ).abs() < 1e-9);
        assert!((l1 - L1_32KB_READ_NJ).abs() < 1e-9);
        // Paper: "the read energy consumption of the ERT is only 2% that of
        // the L1 Cache".
        let ratio = ert / l1;
        assert!(ratio > 0.015 && ratio < 0.025, "ratio = {ratio}");
    }

    #[test]
    fn cam_costs_more_than_sram_of_same_size() {
        let m = EnergyModel::default();
        let sram = m.read_energy_nj(StructureSpec::sram(512, 1));
        let cam = m.read_energy_nj(StructureSpec::cam(32, 16, 1));
        assert!(cam > sram);
    }

    #[test]
    fn energy_scales_with_ports_and_capacity() {
        let m = EnergyModel::default();
        let one = m.read_energy_nj(StructureSpec::sram(1024, 1));
        let two_ports = m.read_energy_nj(StructureSpec::sram(1024, 2));
        let double_cap = m.read_energy_nj(StructureSpec::sram(2048, 1));
        assert!((two_ports - 2.0 * one).abs() < 1e-12);
        assert!((double_cap - 2.0 * one).abs() < 1e-12);
    }

    #[test]
    fn breakdown_sums_structures() {
        let m = EnergyModel::default();
        let specs = LsqStructureSpecs::default();
        let mut c = LsqAccessCounters::default();
        c.hl_sq_searches = 100;
        c.ert_lookups = 100;
        c.cache_accesses = 10;
        let b = m.lsq_energy_breakdown(&c, &specs);
        assert!(b.of("hl_sq") > 0.0);
        assert!(b.of("ert") > 0.0);
        assert!(b.of("ll_lq") == 0.0);
        let sum: f64 = b.by_structure.values().sum();
        assert!((b.total_nj - sum).abs() < 1e-9);
        // The cache dominates: 10 cache accesses cost more than 100 ERT reads.
        assert!(b.of("dcache") > b.of("ert"));
    }

    #[test]
    fn custom_coefficients_are_used() {
        let m = EnergyModel::with_coefficients(1.0, 2.0, 3.0);
        assert!((m.read_energy_nj(StructureSpec::sram(1, 1)) - 1.0).abs() < 1e-12);
        assert!((m.read_energy_nj(StructureSpec::cam(1, 1, 1)) - 2.0).abs() < 1e-12);
        assert!((m.read_energy_nj(StructureSpec::cache(1, 1)) - 3.0).abs() < 1e-12);
    }
}
