//! Property tests of the `.etrc` trace codec: encode → decode must be the
//! identity over arbitrary valid instruction streams, and damaged files
//! must be rejected rather than silently mis-decoded.

use elsq_isa::etrc::{read_trace, write_trace, EtrcError, EtrcReader, TraceMeta};
use elsq_isa::{ArchReg, DynInst, InstBuilder, OpClass};
use proptest::prelude::*;

/// Builds one valid instruction from sampled raw fields.
///
/// `kind` selects the shape; the other fields are reinterpreted per shape
/// so every sampled tuple maps to a valid [`DynInst`].
fn build_inst(kind: u8, pc: u64, a: u64, reg: u8, size_log2: u8, bits: u8) -> DynInst {
    let reg = reg % 32;
    let size = 1u8 << (size_log2 % 4);
    match kind % 6 {
        0 => InstBuilder::load(pc, a, size)
            .dst(ArchReg::int(reg))
            .src(ArchReg::int((reg + 1) % 32))
            .build(),
        1 => InstBuilder::store(pc, a, size)
            .src(ArchReg::int(reg))
            .src(ArchReg::fp((reg + 3) % 32))
            .build(),
        2 => InstBuilder::branch(pc, bits & 1 != 0, bits & 2 != 0, a)
            .src(ArchReg::int(reg))
            .build(),
        3 => InstBuilder::alu(pc, OpClass::FpMul)
            .dst(ArchReg::fp(reg))
            .src(ArchReg::fp((reg + 1) % 32))
            .src(ArchReg::fp((reg + 2) % 32))
            .build(),
        4 => InstBuilder::alu(pc, OpClass::IntMul)
            .dst(ArchReg::int(reg))
            .latency((a % 40 + 1) as u32)
            .build(),
        _ => InstBuilder::alu(pc, OpClass::Nop)
            .wrong_path(bits & 4 != 0)
            .build(),
    }
}

proptest! {
    /// Round trip: any valid stream decodes back exactly, whatever the
    /// block size (1 KiB forces multi-block traces for longer streams).
    #[test]
    fn encode_decode_is_identity(
        raw in prop::collection::vec(((0u8..6, 0u64..u64::MAX, 0u64..u64::MAX), (0u8..32, 0u8..4, 0u8..8)), 1..400),
        block_target in 1u32..4096,
        seed in 0u64..u64::MAX,
    ) {
        let insts: Vec<DynInst> = raw
            .iter()
            .map(|&((kind, pc, a), (reg, size_log2, bits))| build_inst(kind, pc, a, reg, size_log2, bits))
            .collect();
        let mut meta = TraceMeta::named("prop", seed);
        meta.block_target = block_target;
        let bytes = write_trace(&insts, &meta).unwrap();
        let (back_meta, back) = read_trace(&bytes).unwrap();
        prop_assert_eq!(back_meta, meta);
        prop_assert_eq!(back, insts);
    }

    /// Truncating an encoded trace anywhere must produce an error, never a
    /// silently shortened stream that still looks clean.
    #[test]
    fn truncation_never_decodes_cleanly(
        raw in prop::collection::vec(((0u8..6, 0u64..u64::MAX, 0u64..u64::MAX), (0u8..32, 0u8..4, 0u8..8)), 1..60),
        cut_frac in 1u32..1000,
    ) {
        let insts: Vec<DynInst> = raw
            .iter()
            .map(|&((kind, pc, a), (reg, size_log2, bits))| build_inst(kind, pc, a, reg, size_log2, bits))
            .collect();
        let bytes = write_trace(&insts, &TraceMeta::named("cut", 0)).unwrap();
        let cut = (bytes.len() as u64 * cut_frac as u64 / 1000) as usize;
        prop_assume!(cut < bytes.len());
        let err = read_trace(&bytes[..cut]).unwrap_err();
        prop_assert!(
            matches!(err, EtrcError::Truncated(_) | EtrcError::Crc { .. } | EtrcError::BadMagic),
            "cut at {} of {} gave unexpected error: {}", cut, bytes.len(), err
        );
    }

    /// Flipping any single byte must be detected (CRC, framing or record
    /// validation) — or, if it lands in ignorable slack, still decode to
    /// either the original stream or a clean error. A flipped byte must
    /// never yield a *different* stream that passes verification.
    #[test]
    fn single_byte_corruption_is_never_misread(
        raw in prop::collection::vec(((0u8..6, 0u64..u64::MAX, 0u64..u64::MAX), (0u8..32, 0u8..4, 0u8..8)), 1..60),
        pos_frac in 0u32..1000,
        flip in 1u8..=255,
    ) {
        let insts: Vec<DynInst> = raw
            .iter()
            .map(|&((kind, pc, a), (reg, size_log2, bits))| build_inst(kind, pc, a, reg, size_log2, bits))
            .collect();
        let bytes = write_trace(&insts, &TraceMeta::named("flip", 0)).unwrap();
        let pos = (bytes.len() as u64 * pos_frac as u64 / 1000) as usize;
        prop_assume!(pos < bytes.len());
        let mut bad = bytes.clone();
        bad[pos] ^= flip;
        match read_trace(&bad) {
            Err(_) => {}
            Ok((_, decoded)) => prop_assert_eq!(
                decoded, insts,
                "corruption at byte {} accepted with a different stream", pos
            ),
        }
    }

    /// Version-2 round trip: any valid stream with any checkpoint interval
    /// decodes back exactly, and seeking to any checkpoint decodes the same
    /// suffix the straight-through read produces.
    #[test]
    fn checkpointed_encode_decode_and_seek_are_identity(
        raw in prop::collection::vec(((0u8..6, 0u64..u64::MAX, 0u64..u64::MAX), (0u8..32, 0u8..4, 0u8..8)), 1..400),
        block_target in 1u32..4096,
        every in 1u64..500,
        target_frac in 0u32..1200,
    ) {
        let insts: Vec<DynInst> = raw
            .iter()
            .map(|&((kind, pc, a), (reg, size_log2, bits))| build_inst(kind, pc, a, reg, size_log2, bits))
            .collect();
        let mut meta = TraceMeta::named("prop2", 0).with_checkpoints(every);
        meta.block_target = block_target;
        let bytes = write_trace(&insts, &meta).unwrap();
        let (back_meta, back) = read_trace(&bytes).unwrap();
        prop_assert_eq!(&back_meta, &meta);
        prop_assert_eq!(&back, &insts);
        let mut reader = EtrcReader::new(std::io::Cursor::new(&bytes)).unwrap();
        let target = insts.len() as u64 * target_frac as u64 / 1000;
        let resumed = reader.seek_to_checkpoint(target).unwrap();
        prop_assert_eq!(resumed, (target / every * every).min(insts.len() as u64 / every * every));
        let mut suffix = Vec::new();
        while let Some(i) = reader.next_inst().unwrap() {
            suffix.push(i);
        }
        prop_assert_eq!(&suffix[..], &insts[resumed as usize..]);
    }

    /// Truncating a checkpointed trace anywhere — header directory
    /// included — must error, never silently shorten.
    #[test]
    fn checkpointed_truncation_never_decodes_cleanly(
        raw in prop::collection::vec(((0u8..6, 0u64..u64::MAX, 0u64..u64::MAX), (0u8..32, 0u8..4, 0u8..8)), 1..60),
        every in 1u64..40,
        cut_frac in 1u32..1000,
    ) {
        let insts: Vec<DynInst> = raw
            .iter()
            .map(|&((kind, pc, a), (reg, size_log2, bits))| build_inst(kind, pc, a, reg, size_log2, bits))
            .collect();
        let bytes = write_trace(&insts, &TraceMeta::named("cut2", 0).with_checkpoints(every)).unwrap();
        let cut = (bytes.len() as u64 * cut_frac as u64 / 1000) as usize;
        prop_assume!(cut < bytes.len());
        let err = read_trace(&bytes[..cut]).unwrap_err();
        prop_assert!(
            matches!(err, EtrcError::Truncated(_) | EtrcError::Crc { .. } | EtrcError::BadMagic),
            "cut at {} of {} gave unexpected error: {}", cut, bytes.len(), err
        );
    }

    /// A single flipped byte in a checkpointed file — directory entries
    /// included — must never decode to a *different* stream.
    #[test]
    fn checkpointed_single_byte_corruption_is_never_misread(
        raw in prop::collection::vec(((0u8..6, 0u64..u64::MAX, 0u64..u64::MAX), (0u8..32, 0u8..4, 0u8..8)), 1..60),
        every in 1u64..40,
        pos_frac in 0u32..1000,
        flip in 1u8..=255,
    ) {
        let insts: Vec<DynInst> = raw
            .iter()
            .map(|&((kind, pc, a), (reg, size_log2, bits))| build_inst(kind, pc, a, reg, size_log2, bits))
            .collect();
        let bytes = write_trace(&insts, &TraceMeta::named("flip2", 0).with_checkpoints(every)).unwrap();
        let pos = (bytes.len() as u64 * pos_frac as u64 / 1000) as usize;
        prop_assume!(pos < bytes.len());
        let mut bad = bytes.clone();
        bad[pos] ^= flip;
        match read_trace(&bad) {
            Err(_) => {}
            Ok((_, decoded)) => prop_assert_eq!(
                decoded, insts,
                "corruption at byte {} accepted with a different stream", pos
            ),
        }
    }
}
