//! Dynamic instructions.
//!
//! A [`DynInst`] is one element of the dynamic instruction stream produced by
//! a workload generator. It carries everything the timing model needs:
//! operation class and latency, destination and source architectural
//! registers, the effective memory address (for loads/stores) and the branch
//! outcome (for branches). Data values are never represented — the simulator
//! is a timing model, not a functional one.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::op::{Op, OpClass};
use crate::reg::ArchReg;

/// Maximum number of register sources an instruction may name.
pub const MAX_SRCS: usize = 2;

/// A memory access payload attached to loads and stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemAccess {
    /// Effective virtual address of the access.
    pub addr: u64,
    /// Access size in bytes (1, 2, 4 or 8).
    pub size: u8,
}

impl MemAccess {
    /// Creates a memory access descriptor.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not one of 1, 2, 4 or 8.
    pub fn new(addr: u64, size: u8) -> Self {
        assert!(
            matches!(size, 1 | 2 | 4 | 8),
            "unsupported access size {size}"
        );
        Self { addr, size }
    }

    /// First byte address covered by the access.
    pub fn start(&self) -> u64 {
        self.addr
    }

    /// One past the last byte address covered by the access.
    pub fn end(&self) -> u64 {
        self.addr + self.size as u64
    }

    /// Whether this access overlaps `other` (any common byte).
    pub fn overlaps(&self, other: &MemAccess) -> bool {
        self.start() < other.end() && other.start() < self.end()
    }

    /// Whether `other` covers every byte of `self` (full forwarding possible).
    pub fn covered_by(&self, other: &MemAccess) -> bool {
        other.start() <= self.start() && self.end() <= other.end()
    }

    /// The cache line address for a given line size (must be a power of two).
    pub fn line(&self, line_bytes: u64) -> u64 {
        debug_assert!(line_bytes.is_power_of_two());
        self.addr & !(line_bytes - 1)
    }
}

/// Branch payload: the resolved outcome as known by the trace generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BranchInfo {
    /// Whether the branch is taken.
    pub taken: bool,
    /// Whether the front-end branch predictor mispredicts this branch. The
    /// workload generator decides this statistically; the processor model
    /// reacts by fetching wrong-path instructions until the branch resolves.
    pub mispredicted: bool,
    /// Branch target program counter (used only for bookkeeping).
    pub target: u64,
}

/// A single dynamic instruction.
///
/// Constructed via [`InstBuilder`]; consumed by the processor models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DynInst {
    /// Program counter of the instruction.
    pub pc: u64,
    /// Operation class and latency.
    pub op: Op,
    /// Destination register, if any.
    pub dst: Option<ArchReg>,
    /// Source registers (up to [`MAX_SRCS`]).
    pub srcs: [Option<ArchReg>; MAX_SRCS],
    /// Memory access, present iff the op is a load or store.
    pub mem: Option<MemAccess>,
    /// Branch outcome, present iff the op is a branch.
    pub branch: Option<BranchInfo>,
    /// Whether this instruction was synthesized on the wrong path after a
    /// mispredicted branch. Wrong-path instructions never commit but do
    /// consume LSQ and cache bandwidth until squashed.
    pub wrong_path: bool,
}

impl DynInst {
    /// Whether this is a load.
    pub fn is_load(&self) -> bool {
        self.op.is_load()
    }

    /// Whether this is a store.
    pub fn is_store(&self) -> bool {
        self.op.is_store()
    }

    /// Whether this is a memory operation.
    pub fn is_mem(&self) -> bool {
        self.op.is_mem()
    }

    /// Whether this is a branch.
    pub fn is_branch(&self) -> bool {
        self.op.is_branch()
    }

    /// The memory payload of a load or store.
    ///
    /// Callers must only reach for this on memory operations — builders
    /// guarantee ([`DynInst::validate`] enforces) that loads and stores
    /// carry a payload and nothing else does, so on a validated instruction
    /// this can only panic when the caller's classification logic is wrong.
    ///
    /// # Panics
    ///
    /// Panics (with a debug assertion naming the op class first) if the
    /// instruction is not a memory operation.
    pub fn mem_access(&self) -> MemAccess {
        debug_assert!(
            self.is_mem(),
            "mem_access() on a non-memory instruction ({:?})",
            self.op.class()
        );
        self.mem
            .expect("memory instruction without a MemAccess payload")
    }

    /// Whether this branch is marked mispredicted.
    pub fn is_mispredicted_branch(&self) -> bool {
        self.is_branch() && self.branch.map(|b| b.mispredicted).unwrap_or(false)
    }

    /// Iterator over the sources that are actually present.
    pub fn sources(&self) -> impl Iterator<Item = ArchReg> + '_ {
        self.srcs.iter().flatten().copied()
    }

    /// Validates internal consistency: memory payload present exactly for
    /// memory ops and branch payload exactly for branches.
    pub fn validate(&self) -> Result<(), InvalidInstError> {
        if self.is_mem() != self.mem.is_some() {
            return Err(InvalidInstError::MemPayloadMismatch {
                class: self.op.class(),
                has_mem: self.mem.is_some(),
            });
        }
        if self.is_branch() != self.branch.is_some() {
            return Err(InvalidInstError::BranchPayloadMismatch {
                class: self.op.class(),
                has_branch: self.branch.is_some(),
            });
        }
        if self.is_store() && self.dst.is_some() {
            return Err(InvalidInstError::StoreWithDestination);
        }
        Ok(())
    }
}

/// Error returned by [`DynInst::validate`] when an instruction is
/// self-inconsistent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvalidInstError {
    /// Memory payload presence does not match the operation class.
    MemPayloadMismatch {
        /// The op class of the offending instruction.
        class: OpClass,
        /// Whether a memory payload was attached.
        has_mem: bool,
    },
    /// Branch payload presence does not match the operation class.
    BranchPayloadMismatch {
        /// The op class of the offending instruction.
        class: OpClass,
        /// Whether a branch payload was attached.
        has_branch: bool,
    },
    /// A store instruction names a destination register.
    StoreWithDestination,
}

impl fmt::Display for InvalidInstError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvalidInstError::MemPayloadMismatch { class, has_mem } => write!(
                f,
                "memory payload mismatch: class {class} with mem payload = {has_mem}"
            ),
            InvalidInstError::BranchPayloadMismatch { class, has_branch } => write!(
                f,
                "branch payload mismatch: class {class} with branch payload = {has_branch}"
            ),
            InvalidInstError::StoreWithDestination => {
                write!(f, "store instruction names a destination register")
            }
        }
    }
}

impl std::error::Error for InvalidInstError {}

impl fmt::Display for DynInst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}: {}", self.pc, self.op)?;
        if let Some(d) = self.dst {
            write!(f, " {d} <-")?;
        }
        for s in self.sources() {
            write!(f, " {s}")?;
        }
        if let Some(m) = self.mem {
            write!(f, " [{:#x}+{}]", m.addr, m.size)?;
        }
        if let Some(b) = self.branch {
            write!(
                f,
                " ({}taken{})",
                if b.taken { "" } else { "not-" },
                if b.mispredicted { ", mispredicted" } else { "" }
            )?;
        }
        if self.wrong_path {
            write!(f, " [wrong-path]")?;
        }
        Ok(())
    }
}

/// Builder for [`DynInst`].
///
/// # Example
///
/// ```
/// use elsq_isa::{InstBuilder, ArchReg, OpClass};
///
/// let add = InstBuilder::alu(0x400, OpClass::IntAlu)
///     .dst(ArchReg::int(3))
///     .src(ArchReg::int(1))
///     .src(ArchReg::int(2))
///     .build();
/// assert_eq!(add.sources().count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct InstBuilder {
    inst: DynInst,
}

impl InstBuilder {
    /// Starts building a non-memory, non-branch instruction of the given class.
    pub fn alu(pc: u64, class: OpClass) -> Self {
        Self {
            inst: DynInst {
                pc,
                op: Op::of(class),
                dst: None,
                srcs: [None; MAX_SRCS],
                mem: None,
                branch: None,
                wrong_path: false,
            },
        }
    }

    /// Starts building a load from `addr` of `size` bytes.
    pub fn load(pc: u64, addr: u64, size: u8) -> Self {
        let mut b = Self::alu(pc, OpClass::Load);
        b.inst.op = Op::of(OpClass::Load);
        b.inst.mem = Some(MemAccess::new(addr, size));
        b
    }

    /// Starts building a store to `addr` of `size` bytes.
    pub fn store(pc: u64, addr: u64, size: u8) -> Self {
        let mut b = Self::alu(pc, OpClass::Store);
        b.inst.op = Op::of(OpClass::Store);
        b.inst.mem = Some(MemAccess::new(addr, size));
        b
    }

    /// Starts building a branch with the given outcome.
    pub fn branch(pc: u64, taken: bool, mispredicted: bool, target: u64) -> Self {
        let mut b = Self::alu(pc, OpClass::Branch);
        b.inst.branch = Some(BranchInfo {
            taken,
            mispredicted,
            target,
        });
        b
    }

    /// Sets the destination register.
    pub fn dst(mut self, reg: ArchReg) -> Self {
        self.inst.dst = Some(reg);
        self
    }

    /// Adds a source register.
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_SRCS`] sources are added.
    pub fn src(mut self, reg: ArchReg) -> Self {
        let slot = self
            .inst
            .srcs
            .iter_mut()
            .find(|s| s.is_none())
            .expect("instruction already has the maximum number of sources");
        *slot = Some(reg);
        self
    }

    /// Overrides the operation latency.
    pub fn latency(mut self, latency: u32) -> Self {
        self.inst.op = Op::with_latency(self.inst.op.class(), latency);
        self
    }

    /// Marks the instruction as wrong-path.
    pub fn wrong_path(mut self, wp: bool) -> Self {
        self.inst.wrong_path = wp;
        self
    }

    /// Finishes the builder.
    ///
    /// # Panics
    ///
    /// Panics if the instruction is self-inconsistent (see
    /// [`DynInst::validate`]); builders constructed through the typed entry
    /// points cannot trigger this.
    pub fn build(self) -> DynInst {
        self.inst
            .validate()
            .expect("InstBuilder produced an inconsistent instruction");
        self.inst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::ArchReg;

    #[test]
    fn mem_access_overlap_and_cover() {
        let a = MemAccess::new(0x100, 8);
        let b = MemAccess::new(0x104, 4);
        let c = MemAccess::new(0x108, 4);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert!(b.covered_by(&a));
        assert!(!a.covered_by(&b));
        assert_eq!(a.line(32), 0x100);
        assert_eq!(MemAccess::new(0x13f, 1).line(32), 0x120);
    }

    #[test]
    #[should_panic(expected = "unsupported access size")]
    fn bad_access_size_panics() {
        let _ = MemAccess::new(0, 3);
    }

    #[test]
    fn builder_constructs_valid_load() {
        let inst = InstBuilder::load(0x1000, 0xdead_beef, 4)
            .dst(ArchReg::int(5))
            .src(ArchReg::int(6))
            .build();
        assert!(inst.is_load());
        assert!(inst.validate().is_ok());
        assert_eq!(inst.mem.unwrap().size, 4);
        assert_eq!(inst.sources().count(), 1);
    }

    #[test]
    fn builder_constructs_valid_store_and_branch() {
        let st = InstBuilder::store(0x1004, 0x2000, 8)
            .src(ArchReg::int(1))
            .src(ArchReg::int(2))
            .build();
        assert!(st.is_store());
        assert!(st.dst.is_none());

        let br = InstBuilder::branch(0x1008, true, true, 0x1100).build();
        assert!(br.is_branch());
        assert!(br.is_mispredicted_branch());
    }

    #[test]
    fn validate_catches_mismatches() {
        let mut inst = InstBuilder::alu(0, OpClass::IntAlu).build();
        inst.mem = Some(MemAccess::new(0, 4));
        assert!(matches!(
            inst.validate(),
            Err(InvalidInstError::MemPayloadMismatch { .. })
        ));

        let mut ld = InstBuilder::load(0, 0x10, 4).build();
        ld.mem = None;
        assert!(ld.validate().is_err());

        let mut st = InstBuilder::store(0, 0x10, 4).build();
        st.dst = Some(ArchReg::int(1));
        assert_eq!(st.validate(), Err(InvalidInstError::StoreWithDestination));

        let mut br = InstBuilder::branch(0, false, false, 0).build();
        br.branch = None;
        assert!(matches!(
            br.validate(),
            Err(InvalidInstError::BranchPayloadMismatch { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "maximum number of sources")]
    fn too_many_sources_panics() {
        let _ = InstBuilder::alu(0, OpClass::IntAlu)
            .src(ArchReg::int(1))
            .src(ArchReg::int(2))
            .src(ArchReg::int(3));
    }

    #[test]
    fn display_includes_key_fields() {
        let inst = InstBuilder::load(0x1000, 0x2000, 8)
            .dst(ArchReg::int(1))
            .src(ArchReg::int(2))
            .wrong_path(true)
            .build();
        let s = inst.to_string();
        assert!(s.contains("load"));
        assert!(s.contains("0x2000"));
        assert!(s.contains("wrong-path"));
    }

    #[test]
    fn latency_override() {
        let inst = InstBuilder::alu(0, OpClass::FpDiv).latency(25).build();
        assert_eq!(inst.op.latency(), 25);
    }
}
