//! The `.etrc` on-disk trace format: versioned, block-compressed,
//! CRC-checked dynamic-instruction traces.
//!
//! An `.etrc` file stores a correct-path [`DynInst`] stream plus the
//! provenance needed to replay it bit-for-bit: the generator name and seed,
//! and the [`WrongPathSpec`] that parameterizes wrong-path synthesis (the
//! wrong-path stream is demand-driven by simulated timing, so it is recorded
//! as its generating spec, not as flat records). Records are delta-encoded
//! (program counters and memory addresses as zig-zag varint deltas) and
//! packed into independently decodable blocks, each optionally LZSS
//! compressed and guarded by a CRC-32 of its uncompressed payload.
//!
//! The full byte-level specification lives in `docs/TRACE_FORMAT.md`; this
//! module is the reference implementation. File layout at a glance:
//!
//! ```text
//! header  | magic "ELSQETRC", version, flags, provenance, name,
//!         | [v2: checkpoint directory], CRC-32
//! block*  | n_records, raw_len, comp_len, encoding, CRC-32, payload
//! end     | an all-zero block header (17 zero bytes)
//! trailer | magic "ETRCEND\0", instruction count, CRC-32
//! ```
//!
//! Version-2 headers additionally carry a *checkpoint directory*: periodic
//! architectural checkpoints (instruction count, block byte offset, last
//! program counter and memory address) taken at block boundaries, so a
//! seekable reader ([`EtrcReader::seek_to_checkpoint`]) can jump near any
//! sample window without decoding the prefix. The directory sits between
//! the name and the header CRC and is covered by it.
//!
//! # Example
//!
//! ```
//! use elsq_isa::etrc::{read_trace, write_trace, TraceMeta};
//! use elsq_isa::{InstBuilder, OpClass};
//!
//! let insts = vec![
//!     InstBuilder::load(0x1000, 0x8000, 8).dst(elsq_isa::ArchReg::int(1)).build(),
//!     InstBuilder::alu(0x1004, OpClass::IntAlu).dst(elsq_isa::ArchReg::int(2)).build(),
//! ];
//! let bytes = write_trace(&insts, &TraceMeta::named("example", 7)).unwrap();
//! let (meta, decoded) = read_trace(&bytes).unwrap();
//! assert_eq!(meta.name, "example");
//! assert_eq!(decoded, insts);
//! ```

use std::fmt;
use std::fs::File;
use std::io::{BufReader, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::inst::{BranchInfo, DynInst, InvalidInstError, MemAccess, MAX_SRCS};
use crate::op::{Op, OpClass};
use crate::reg::{ArchReg, RegClass, NUM_ARCH_REGS_PER_CLASS};
use crate::trace::TraceSource;
use crate::wrongpath::{WrongPathSpec, WrongPathSynth};

/// File magic, first 8 bytes of every `.etrc` file.
pub const MAGIC: [u8; 8] = *b"ELSQETRC";
/// Trailer magic, written after the end-of-blocks marker.
pub const END_MAGIC: [u8; 8] = *b"ETRCEND\0";
/// Original format version: no checkpoint directory.
pub const FORMAT_VERSION: u16 = 1;
/// Format version 2: the header carries a checkpoint directory between the
/// name and the header CRC, so a seekable reader can jump to any sample
/// window without decoding the prefix.
pub const FORMAT_VERSION_V2: u16 = 2;
/// Default uncompressed block payload target in bytes.
pub const DEFAULT_BLOCK_TARGET: u32 = 64 * 1024;
/// Header flag bit: a wrong-path spec is present.
pub const FLAG_WRONG_PATH: u16 = 1 << 0;

/// Suite tag: the trace is not part of a recorded suite.
pub const SUITE_NONE: u8 = 0;
/// Suite tag: member of the FP-like suite roster.
pub const SUITE_FP: u8 = 1;
/// Suite tag: member of the INT-like suite roster.
pub const SUITE_INT: u8 = 2;

/// Block encoding: payload stored uncompressed.
pub const ENC_RAW: u8 = 0;
/// Block encoding: payload LZSS compressed (see `docs/TRACE_FORMAT.md`).
pub const ENC_LZSS: u8 = 1;

const HEADER_FIXED_LEN: usize = 60;
const BLOCK_HEADER_LEN: usize = 17;
const TRAILER_LEN: usize = 20;
/// Fixed on-disk size of one checkpoint directory entry.
pub const CHECKPOINT_ENTRY_LEN: usize = 32;
/// Upper bound on directory entries a reader will accept. A million entries
/// is already a 32 MiB header; anything larger is treated as corruption.
pub const MAX_CHECKPOINTS: u32 = 1 << 20;
/// Minimum LZSS match length; shorter repeats are emitted as literals.
const LZSS_MIN_MATCH: usize = 4;
/// Maximum LZSS match length (`LZSS_MIN_MATCH + 255`).
const LZSS_MAX_MATCH: usize = LZSS_MIN_MATCH + 255;

/// Errors produced by the `.etrc` codec.
#[derive(Debug)]
pub enum EtrcError {
    /// An underlying I/O error.
    Io(std::io::Error),
    /// The file does not start with the `.etrc` magic.
    BadMagic,
    /// The file's format version is newer than this reader supports.
    UnsupportedVersion(u16),
    /// The file ended in the middle of the named structure.
    Truncated(&'static str),
    /// A CRC-32 check failed over the named structure.
    Crc {
        /// Which structure failed ("header", "block", "trailer").
        what: &'static str,
        /// Index of the failing block (0 for header/trailer).
        block: u64,
    },
    /// The file is structurally invalid.
    Corrupt(String),
    /// An instruction failed [`DynInst::validate`] during encode or decode.
    InvalidInst(InvalidInstError),
}

impl fmt::Display for EtrcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EtrcError::Io(e) => write!(f, "i/o error: {e}"),
            EtrcError::BadMagic => write!(f, "not an .etrc file (bad magic)"),
            EtrcError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported .etrc version {v} (reader supports up to {FORMAT_VERSION_V2})"
                )
            }
            EtrcError::Truncated(what) => write!(f, "truncated file: unexpected end inside {what}"),
            EtrcError::Crc { what, block } => write!(f, "CRC mismatch in {what} {block}"),
            EtrcError::Corrupt(msg) => write!(f, "corrupt trace: {msg}"),
            EtrcError::InvalidInst(e) => write!(f, "invalid instruction: {e}"),
        }
    }
}

impl std::error::Error for EtrcError {}

impl From<std::io::Error> for EtrcError {
    fn from(e: std::io::Error) -> Self {
        EtrcError::Io(e)
    }
}

impl From<InvalidInstError> for EtrcError {
    fn from(e: InvalidInstError) -> Self {
        EtrcError::InvalidInst(e)
    }
}

/// Provenance metadata stored in an `.etrc` header.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceMeta {
    /// Format version of the file. Readers fill in the version actually
    /// decoded from the header; writers can only produce the current
    /// [`FORMAT_VERSION`] and reject anything else.
    pub version: u16,
    /// Workload name, reported verbatim by [`FileTrace::name`] so replayed
    /// reports label rows exactly like generator-driven ones.
    pub name: String,
    /// Seed the generator that produced the trace was constructed with.
    pub seed: u64,
    /// Which suite roster the trace belongs to ([`SUITE_NONE`],
    /// [`SUITE_FP`] or [`SUITE_INT`]).
    pub suite_tag: u8,
    /// Position within the suite roster, if any.
    pub suite_index: Option<u8>,
    /// Wrong-path synthesis parameters, if the source exposed them.
    pub wrong_path: Option<WrongPathSpec>,
    /// Uncompressed block payload target in bytes.
    pub block_target: u32,
    /// Checkpoint spacing in instructions, if the header carries a
    /// checkpoint directory (version-2 files only).
    pub checkpoint_every: Option<u64>,
}

impl TraceMeta {
    /// A minimal meta: just a name and a seed (no suite membership, no
    /// wrong-path spec, default block size).
    pub fn named(name: impl Into<String>, seed: u64) -> Self {
        Self {
            version: FORMAT_VERSION,
            name: name.into(),
            seed,
            suite_tag: SUITE_NONE,
            suite_index: None,
            wrong_path: None,
            block_target: DEFAULT_BLOCK_TARGET,
            checkpoint_every: None,
        }
    }

    /// Upgrades the meta to a version-2 file whose header carries a
    /// checkpoint directory with one entry every `every` instructions.
    pub fn with_checkpoints(mut self, every: u64) -> Self {
        self.version = FORMAT_VERSION_V2;
        self.checkpoint_every = Some(every);
        self
    }
}

/// One entry of a version-2 checkpoint directory: the architectural state
/// needed to resume decoding at a block boundary without reading the
/// prefix. Entry 0 is always the trace start (all fields zero).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Checkpoint {
    /// Correct-path instructions decoded before this point.
    pub insts: u64,
    /// Byte offset of the next block header, measured from the end of the
    /// file header (so it stays valid whatever the name length is).
    pub offset: u64,
    /// Program counter of the last instruction before the checkpoint.
    pub pc: u64,
    /// Last data-memory address touched before the checkpoint.
    pub mem_addr: u64,
}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3, polynomial 0xEDB88320, as used by gzip/zlib/PNG)
// ---------------------------------------------------------------------------

fn crc32_table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        table
    })
}

/// CRC-32 (IEEE) of `data`, the checksum every `.etrc` structure uses.
pub fn crc32(data: &[u8]) -> u32 {
    let table = crc32_table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Varint + zig-zag primitives
// ---------------------------------------------------------------------------

/// Zig-zag maps a signed delta to an unsigned varint-friendly value.
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Appends `v` as an LEB128 varint (7 data bits per byte, MSB = continue).
fn write_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

fn read_varint(buf: &[u8], cursor: &mut usize) -> Result<u64, EtrcError> {
    let mut v = 0u64;
    for shift in 0..10 {
        let byte = *buf.get(*cursor).ok_or(EtrcError::Truncated("varint"))?;
        *cursor += 1;
        v |= u64::from(byte & 0x7F) << (shift * 7);
        if byte & 0x80 == 0 {
            if shift == 9 && byte > 1 {
                return Err(EtrcError::Corrupt("varint overflows u64".into()));
            }
            return Ok(v);
        }
    }
    Err(EtrcError::Corrupt("varint longer than 10 bytes".into()))
}

// ---------------------------------------------------------------------------
// LZSS block compression
// ---------------------------------------------------------------------------

const LZSS_HASH_BITS: u32 = 15;

fn lzss_hash(window: &[u8]) -> usize {
    let v = u32::from_le_bytes([window[0], window[1], window[2], window[3]]);
    (v.wrapping_mul(2_654_435_761) >> (32 - LZSS_HASH_BITS)) as usize
}

/// LZSS-compresses `raw`. Returns `None` when the compressed form would not
/// be smaller (the block is then stored raw).
fn lzss_compress(raw: &[u8]) -> Option<Vec<u8>> {
    let mut out = Vec::with_capacity(raw.len());
    // Single-slot hash table of the most recent position of each 4-byte
    // prefix hash; position + 1 so 0 means empty.
    let mut table = vec![0u32; 1 << LZSS_HASH_BITS];
    let mut pos = 0usize;
    let mut control_at = usize::MAX;
    let mut control_bits = 8u8;
    let mut push_token = |out: &mut Vec<u8>, is_match: bool| {
        if control_bits == 8 {
            control_at = out.len();
            out.push(0);
            control_bits = 0;
        }
        if is_match {
            out[control_at] |= 1 << control_bits;
        }
        control_bits += 1;
    };
    while pos < raw.len() {
        let mut matched = 0usize;
        let mut offset = 0usize;
        if pos + LZSS_MIN_MATCH <= raw.len() {
            let h = lzss_hash(&raw[pos..]);
            let cand = table[h] as usize;
            table[h] = (pos + 1) as u32;
            if cand > 0 {
                let cand = cand - 1;
                let dist = pos - cand;
                if dist > 0 && dist <= u16::MAX as usize {
                    let limit = (raw.len() - pos).min(LZSS_MAX_MATCH);
                    let mut len = 0usize;
                    while len < limit && raw[cand + len] == raw[pos + len] {
                        len += 1;
                    }
                    if len >= LZSS_MIN_MATCH {
                        matched = len;
                        offset = dist;
                    }
                }
            }
        }
        if matched > 0 {
            push_token(&mut out, true);
            out.extend_from_slice(&(offset as u16).to_le_bytes());
            out.push((matched - LZSS_MIN_MATCH) as u8);
            // Index the interior of the match so later data can refer to it.
            let stop = (pos + matched).min(raw.len().saturating_sub(LZSS_MIN_MATCH - 1));
            for p in (pos + 1)..stop {
                table[lzss_hash(&raw[p..])] = (p + 1) as u32;
            }
            pos += matched;
        } else {
            push_token(&mut out, false);
            out.push(raw[pos]);
            pos += 1;
        }
    }
    (out.len() < raw.len()).then_some(out)
}

/// Decompresses an LZSS payload into exactly `raw_len` bytes.
fn lzss_decompress(comp: &[u8], raw_len: usize, block: u64) -> Result<Vec<u8>, EtrcError> {
    let mut out = Vec::with_capacity(raw_len);
    let mut cursor = 0usize;
    let mut control = 0u8;
    let mut control_bits = 0u8;
    while out.len() < raw_len {
        if control_bits == 0 {
            control = *comp
                .get(cursor)
                .ok_or(EtrcError::Truncated("LZSS control byte"))?;
            cursor += 1;
            control_bits = 8;
        }
        let is_match = control & 1 != 0;
        control >>= 1;
        control_bits -= 1;
        if is_match {
            let bytes = comp
                .get(cursor..cursor + 3)
                .ok_or(EtrcError::Truncated("LZSS match token"))?;
            cursor += 3;
            let offset = u16::from_le_bytes([bytes[0], bytes[1]]) as usize;
            let len = bytes[2] as usize + LZSS_MIN_MATCH;
            if offset == 0 || offset > out.len() {
                return Err(EtrcError::Corrupt(format!(
                    "block {block}: LZSS offset {offset} outside the {} bytes produced",
                    out.len()
                )));
            }
            if out.len() + len > raw_len {
                return Err(EtrcError::Corrupt(format!(
                    "block {block}: LZSS match overruns the declared raw length"
                )));
            }
            // Byte-by-byte to support overlapping (run-length style) matches.
            let start = out.len() - offset;
            for i in 0..len {
                let b = out[start + i];
                out.push(b);
            }
        } else {
            let b = *comp
                .get(cursor)
                .ok_or(EtrcError::Truncated("LZSS literal"))?;
            cursor += 1;
            out.push(b);
        }
    }
    if cursor != comp.len() {
        return Err(EtrcError::Corrupt(format!(
            "block {block}: {} trailing bytes after the LZSS stream",
            comp.len() - cursor
        )));
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Record codec (delta encoding of DynInst)
// ---------------------------------------------------------------------------

fn class_code(class: OpClass) -> u8 {
    match class {
        OpClass::IntAlu => 0,
        OpClass::IntMul => 1,
        OpClass::FpAlu => 2,
        OpClass::FpMul => 3,
        OpClass::FpDiv => 4,
        OpClass::Load => 5,
        OpClass::Store => 6,
        OpClass::Branch => 7,
        OpClass::Nop => 8,
    }
}

fn code_class(code: u8) -> Result<OpClass, EtrcError> {
    Ok(match code {
        0 => OpClass::IntAlu,
        1 => OpClass::IntMul,
        2 => OpClass::FpAlu,
        3 => OpClass::FpMul,
        4 => OpClass::FpDiv,
        5 => OpClass::Load,
        6 => OpClass::Store,
        7 => OpClass::Branch,
        8 => OpClass::Nop,
        other => return Err(EtrcError::Corrupt(format!("unknown op-class code {other}"))),
    })
}

fn reg_code(reg: Option<ArchReg>) -> u8 {
    reg.map(|r| r.flat_index() as u8).unwrap_or(0xFF)
}

fn code_reg(code: u8) -> Result<Option<ArchReg>, EtrcError> {
    match code {
        0xFF => Ok(None),
        i if i < NUM_ARCH_REGS_PER_CLASS => Ok(Some(ArchReg::new(RegClass::Int, i))),
        i if i < 2 * NUM_ARCH_REGS_PER_CLASS => Ok(Some(ArchReg::new(
            RegClass::Fp,
            i - NUM_ARCH_REGS_PER_CLASS,
        ))),
        other => Err(EtrcError::Corrupt(format!(
            "register code {other} out of range"
        ))),
    }
}

/// Per-stream delta state; reset at every block boundary so each block
/// decodes independently.
#[derive(Debug, Default, Clone, Copy)]
struct DeltaState {
    prev_pc: u64,
    prev_mem_addr: u64,
}

fn encode_record(buf: &mut Vec<u8>, inst: &DynInst, st: &mut DeltaState) -> Result<(), EtrcError> {
    inst.validate()?;
    let class = inst.op.class();
    let explicit_latency = inst.op.latency() != class.default_latency();
    let mut flags = class_code(class);
    debug_assert!(flags < 16);
    if inst.dst.is_some() {
        flags |= 1 << 4;
    }
    if explicit_latency {
        flags |= 1 << 5;
    }
    if inst.wrong_path {
        flags |= 1 << 6;
    }
    buf.push(flags);
    write_varint(buf, zigzag(inst.pc.wrapping_sub(st.prev_pc) as i64));
    st.prev_pc = inst.pc;
    if explicit_latency {
        write_varint(buf, inst.op.latency() as u64);
    }
    if let Some(dst) = inst.dst {
        buf.push(reg_code(Some(dst)));
    }
    buf.push(reg_code(inst.srcs[0]));
    buf.push(reg_code(inst.srcs[1]));
    if let Some(mem) = inst.mem {
        write_varint(buf, zigzag(mem.addr.wrapping_sub(st.prev_mem_addr) as i64));
        st.prev_mem_addr = mem.addr;
        buf.push(mem.size.trailing_zeros() as u8);
    }
    if let Some(branch) = inst.branch {
        buf.push(u8::from(branch.taken) | (u8::from(branch.mispredicted) << 1));
        write_varint(buf, zigzag(branch.target.wrapping_sub(inst.pc) as i64));
    }
    Ok(())
}

fn decode_record(
    buf: &[u8],
    cursor: &mut usize,
    st: &mut DeltaState,
) -> Result<DynInst, EtrcError> {
    let flags = *buf
        .get(*cursor)
        .ok_or(EtrcError::Truncated("record flags"))?;
    *cursor += 1;
    if flags & 0x80 != 0 {
        return Err(EtrcError::Corrupt("reserved record flag bit set".into()));
    }
    let class = code_class(flags & 0x0F)?;
    let has_dst = flags & (1 << 4) != 0;
    let explicit_latency = flags & (1 << 5) != 0;
    let wrong_path = flags & (1 << 6) != 0;
    let pc = st
        .prev_pc
        .wrapping_add(unzigzag(read_varint(buf, cursor)?) as u64);
    st.prev_pc = pc;
    let op = if explicit_latency {
        let latency = read_varint(buf, cursor)?;
        let latency = u32::try_from(latency)
            .ok()
            .filter(|&l| l > 0)
            .ok_or_else(|| EtrcError::Corrupt(format!("latency {latency} out of range")))?;
        Op::with_latency(class, latency)
    } else {
        Op::of(class)
    };
    let dst = if has_dst {
        let code = *buf
            .get(*cursor)
            .ok_or(EtrcError::Truncated("dst register"))?;
        *cursor += 1;
        let reg = code_reg(code)?;
        if reg.is_none() {
            return Err(EtrcError::Corrupt(
                "dst flagged present but encoded as none".into(),
            ));
        }
        reg
    } else {
        None
    };
    let mut srcs = [None; MAX_SRCS];
    for src in srcs.iter_mut() {
        let code = *buf
            .get(*cursor)
            .ok_or(EtrcError::Truncated("src register"))?;
        *cursor += 1;
        *src = code_reg(code)?;
    }
    let mem = if class.is_mem() {
        let addr = st
            .prev_mem_addr
            .wrapping_add(unzigzag(read_varint(buf, cursor)?) as u64);
        st.prev_mem_addr = addr;
        let size_log2 = *buf
            .get(*cursor)
            .ok_or(EtrcError::Truncated("access size"))?;
        *cursor += 1;
        if size_log2 > 3 {
            return Err(EtrcError::Corrupt(format!(
                "access size log2 {size_log2} out of range"
            )));
        }
        Some(MemAccess::new(addr, 1 << size_log2))
    } else {
        None
    };
    let branch = if class == OpClass::Branch {
        let bits = *buf
            .get(*cursor)
            .ok_or(EtrcError::Truncated("branch outcome"))?;
        *cursor += 1;
        if bits & !0x03 != 0 {
            return Err(EtrcError::Corrupt("reserved branch outcome bit set".into()));
        }
        let target = pc.wrapping_add(unzigzag(read_varint(buf, cursor)?) as u64);
        Some(BranchInfo {
            taken: bits & 1 != 0,
            mispredicted: bits & 2 != 0,
            target,
        })
    } else {
        None
    };
    let inst = DynInst {
        pc,
        op,
        dst,
        srcs,
        mem,
        branch,
        wrong_path,
    };
    inst.validate()?;
    Ok(inst)
}

// ---------------------------------------------------------------------------
// Header / trailer codec
// ---------------------------------------------------------------------------

/// Structural checks shared by the encoder and the decoder: a directory
/// must start at the trace start and advance strictly in both instruction
/// count and byte offset, or seeking through it would misposition reads.
fn validate_directory(every: u64, entries: &[Checkpoint]) -> Result<(), EtrcError> {
    if every == 0 {
        return Err(EtrcError::Corrupt(
            "checkpoint interval of zero instructions".into(),
        ));
    }
    if entries.len() > MAX_CHECKPOINTS as usize {
        return Err(EtrcError::Corrupt(format!(
            "checkpoint directory of {} entries exceeds the {MAX_CHECKPOINTS} cap",
            entries.len()
        )));
    }
    match entries.first() {
        None => {
            return Err(EtrcError::Corrupt("empty checkpoint directory".into()));
        }
        Some(first) if *first != Checkpoint::default() => {
            return Err(EtrcError::Corrupt(
                "checkpoint directory entry 0 is not the trace start".into(),
            ));
        }
        Some(_) => {}
    }
    for pair in entries.windows(2) {
        if pair[1].insts <= pair[0].insts || pair[1].offset <= pair[0].offset {
            return Err(EtrcError::Corrupt(
                "checkpoint directory entries are not strictly increasing".into(),
            ));
        }
    }
    Ok(())
}

// Encoding enforces every constraint decoding checks, so a writer can
// never produce a file its own reader refuses to open.
fn encode_header(meta: &TraceMeta, checkpoints: &[Checkpoint]) -> Result<Vec<u8>, EtrcError> {
    match meta.checkpoint_every {
        Some(every) => {
            if meta.version != FORMAT_VERSION_V2 {
                return Err(EtrcError::Corrupt(format!(
                    "checkpoint directories require format version {FORMAT_VERSION_V2}, not {}",
                    meta.version
                )));
            }
            validate_directory(every, checkpoints)?;
        }
        None => {
            if meta.version != FORMAT_VERSION {
                return Err(EtrcError::Corrupt(format!(
                    "writer can only produce format version {FORMAT_VERSION} without a \
                     checkpoint directory, not {}",
                    meta.version
                )));
            }
            debug_assert!(checkpoints.is_empty());
        }
    }
    let name = meta.name.as_bytes();
    if name.len() > u16::MAX as usize {
        return Err(EtrcError::Corrupt(
            "workload name longer than 65535 bytes".into(),
        ));
    }
    if meta.block_target == 0 {
        return Err(EtrcError::Corrupt("block target of zero bytes".into()));
    }
    if let Some(wp) = meta.wrong_path {
        if !(0.0..=1.0).contains(&wp.load_rate) {
            return Err(EtrcError::Corrupt(format!(
                "wrong-path load rate {} outside [0, 1]",
                wp.load_rate
            )));
        }
    }
    let mut buf = Vec::with_capacity(
        HEADER_FIXED_LEN + name.len() + checkpoints.len() * CHECKPOINT_ENTRY_LEN + 16,
    );
    buf.extend_from_slice(&MAGIC);
    buf.extend_from_slice(&meta.version.to_le_bytes());
    let flags = if meta.wrong_path.is_some() {
        FLAG_WRONG_PATH
    } else {
        0
    };
    buf.extend_from_slice(&flags.to_le_bytes());
    buf.push(meta.suite_tag);
    if meta.suite_index == Some(0xFF) {
        // 0xFF is the on-disk "no slot" sentinel; writing it as a real slot
        // would decode back as None and silently break round-tripping.
        return Err(EtrcError::Corrupt(
            "suite index 255 is reserved for \"no slot\"".into(),
        ));
    }
    buf.push(meta.suite_index.unwrap_or(0xFF));
    buf.extend_from_slice(&(name.len() as u16).to_le_bytes());
    buf.extend_from_slice(&meta.seed.to_le_bytes());
    let wp = meta.wrong_path.unwrap_or(WrongPathSpec {
        seed: 0,
        region_base: 0,
        region_size: 0,
        load_rate: 0.0,
    });
    buf.extend_from_slice(&wp.seed.to_le_bytes());
    buf.extend_from_slice(&wp.region_base.to_le_bytes());
    buf.extend_from_slice(&wp.region_size.to_le_bytes());
    buf.extend_from_slice(&wp.load_rate.to_bits().to_le_bytes());
    buf.extend_from_slice(&meta.block_target.to_le_bytes());
    debug_assert_eq!(buf.len(), HEADER_FIXED_LEN);
    buf.extend_from_slice(name);
    if let Some(every) = meta.checkpoint_every {
        buf.extend_from_slice(&every.to_le_bytes());
        buf.extend_from_slice(&(checkpoints.len() as u32).to_le_bytes());
        for c in checkpoints {
            buf.extend_from_slice(&c.insts.to_le_bytes());
            buf.extend_from_slice(&c.offset.to_le_bytes());
            buf.extend_from_slice(&c.pc.to_le_bytes());
            buf.extend_from_slice(&c.mem_addr.to_le_bytes());
        }
    }
    let crc = crc32(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());
    Ok(buf)
}

fn read_exact_or(src: &mut impl Read, buf: &mut [u8], what: &'static str) -> Result<(), EtrcError> {
    src.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            EtrcError::Truncated(what)
        } else {
            EtrcError::Io(e)
        }
    })
}

fn decode_header(src: &mut impl Read) -> Result<(TraceMeta, u64, Vec<Checkpoint>), EtrcError> {
    let mut fixed = [0u8; HEADER_FIXED_LEN];
    read_exact_or(src, &mut fixed, "header")?;
    if fixed[0..8] != MAGIC {
        return Err(EtrcError::BadMagic);
    }
    let u16_at = |i: usize| u16::from_le_bytes([fixed[i], fixed[i + 1]]);
    let u32_at = |i: usize| u32::from_le_bytes(fixed[i..i + 4].try_into().unwrap());
    let u64_at = |i: usize| u64::from_le_bytes(fixed[i..i + 8].try_into().unwrap());
    let version = u16_at(8);
    if version == 0 || version > FORMAT_VERSION_V2 {
        return Err(EtrcError::UnsupportedVersion(version));
    }
    let flags = u16_at(10);
    if flags & !FLAG_WRONG_PATH != 0 {
        // Reserved bits are the forward-compat escape hatch (see the
        // versioning rules in docs/TRACE_FORMAT.md): tolerating them here
        // would let a future minor extension silently misdecode.
        return Err(EtrcError::Corrupt(format!(
            "reserved header flag bits set ({flags:#06x})"
        )));
    }
    let suite_tag = fixed[12];
    let suite_index = if fixed[13] == 0xFF {
        None
    } else {
        Some(fixed[13])
    };
    let name_len = u16_at(14) as usize;
    let seed = u64_at(16);
    let wrong_path = (flags & FLAG_WRONG_PATH != 0).then(|| WrongPathSpec {
        seed: u64_at(24),
        region_base: u64_at(32),
        region_size: u64_at(40),
        load_rate: f64::from_bits(u64_at(48)),
    });
    if let Some(wp) = wrong_path {
        if !(0.0..=1.0).contains(&wp.load_rate) {
            return Err(EtrcError::Corrupt(format!(
                "wrong-path load rate {} outside [0, 1]",
                wp.load_rate
            )));
        }
    }
    let block_target = u32_at(56);
    if block_target == 0 {
        return Err(EtrcError::Corrupt("block target of zero bytes".into()));
    }
    let mut name = vec![0u8; name_len];
    read_exact_or(src, &mut name, "header name")?;
    let mut directory = Vec::new();
    if version >= FORMAT_VERSION_V2 {
        let mut dir_fixed = [0u8; 12];
        read_exact_or(src, &mut dir_fixed, "checkpoint directory")?;
        let count = u32::from_le_bytes(dir_fixed[8..12].try_into().unwrap());
        if count == 0 {
            return Err(EtrcError::Corrupt("empty checkpoint directory".into()));
        }
        if count > MAX_CHECKPOINTS {
            return Err(EtrcError::Corrupt(format!(
                "checkpoint directory of {count} entries exceeds the {MAX_CHECKPOINTS} cap"
            )));
        }
        let mut entries = vec![0u8; count as usize * CHECKPOINT_ENTRY_LEN];
        read_exact_or(src, &mut entries, "checkpoint directory entries")?;
        directory.extend_from_slice(&dir_fixed);
        directory.extend_from_slice(&entries);
    }
    let mut crc_bytes = [0u8; 4];
    read_exact_or(src, &mut crc_bytes, "header CRC")?;
    let mut crc_input = fixed.to_vec();
    crc_input.extend_from_slice(&name);
    crc_input.extend_from_slice(&directory);
    if crc32(&crc_input) != u32::from_le_bytes(crc_bytes) {
        return Err(EtrcError::Crc {
            what: "header",
            block: 0,
        });
    }
    let name = String::from_utf8(name)
        .map_err(|_| EtrcError::Corrupt("workload name is not UTF-8".into()))?;
    let mut checkpoint_every = None;
    let mut checkpoints = Vec::new();
    if version >= FORMAT_VERSION_V2 {
        let d64 = |i: usize| u64::from_le_bytes(directory[i..i + 8].try_into().unwrap());
        let every = d64(0);
        let count = u32::from_le_bytes(directory[8..12].try_into().unwrap()) as usize;
        checkpoints.reserve(count);
        for e in 0..count {
            let at = 12 + e * CHECKPOINT_ENTRY_LEN;
            checkpoints.push(Checkpoint {
                insts: d64(at),
                offset: d64(at + 8),
                pc: d64(at + 16),
                mem_addr: d64(at + 24),
            });
        }
        validate_directory(every, &checkpoints)?;
        checkpoint_every = Some(every);
    }
    let consumed = (HEADER_FIXED_LEN + name_len + directory.len() + 4) as u64;
    Ok((
        TraceMeta {
            version,
            name,
            seed,
            suite_tag,
            suite_index,
            wrong_path,
            block_target,
            checkpoint_every,
        },
        consumed,
        checkpoints,
    ))
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Streaming `.etrc` encoder over any [`Write`] sink.
///
/// Instructions are buffered into blocks of roughly the header's block
/// target and flushed as they fill. [`EtrcWriter::finish`] writes the
/// end-of-blocks marker and the counting trailer; a file abandoned without
/// `finish` is detectably truncated (readers error rather than silently
/// yielding a short stream).
///
/// When the meta carries a [`TraceMeta::checkpoint_every`] interval, a
/// block is additionally flushed every `every` instructions and its offset
/// recorded in the header's checkpoint directory. The directory is only
/// complete once the stream ends, so checkpointed bodies are buffered in
/// memory and written — header first — by `finish`.
pub struct EtrcWriter<W: Write> {
    sink: W,
    meta: TraceMeta,
    raw: Vec<u8>,
    n_records: u32,
    delta: DeltaState,
    block_target: usize,
    inst_count: u64,
    /// Flushed block bytes, held back until `finish` (checkpointing only).
    body: Vec<u8>,
    checkpoints: Vec<Checkpoint>,
    /// Instruction count at which the next checkpoint fires (`u64::MAX`
    /// when the meta asks for none).
    next_checkpoint: u64,
    last_pc: u64,
    last_mem_addr: u64,
}

impl<W: Write> EtrcWriter<W> {
    /// Creates a writer and immediately writes the header for `meta` (for
    /// checkpointed traces the header is validated now but written by
    /// [`EtrcWriter::finish`], once the directory is known).
    pub fn new(mut sink: W, meta: &TraceMeta) -> Result<Self, EtrcError> {
        if meta.checkpoint_every.is_some() {
            // Fail on a bad meta before any instruction is buffered; the
            // directory itself grows as blocks flush.
            encode_header(meta, &[Checkpoint::default()])?;
        } else {
            sink.write_all(&encode_header(meta, &[])?)?;
        }
        Ok(Self {
            sink,
            raw: Vec::with_capacity(meta.block_target as usize + 64),
            n_records: 0,
            delta: DeltaState::default(),
            block_target: meta.block_target as usize,
            inst_count: 0,
            body: Vec::new(),
            checkpoints: if meta.checkpoint_every.is_some() {
                vec![Checkpoint::default()]
            } else {
                Vec::new()
            },
            next_checkpoint: meta.checkpoint_every.unwrap_or(u64::MAX),
            last_pc: 0,
            last_mem_addr: 0,
            meta: meta.clone(),
        })
    }

    /// Appends one instruction record.
    ///
    /// Returns an error if `inst` fails [`DynInst::validate`] (only valid
    /// instructions are representable) or on I/O failure.
    pub fn write_inst(&mut self, inst: &DynInst) -> Result<(), EtrcError> {
        encode_record(&mut self.raw, inst, &mut self.delta)?;
        self.n_records += 1;
        self.inst_count += 1;
        self.last_pc = inst.pc;
        if let Some(mem) = inst.mem {
            self.last_mem_addr = mem.addr;
        }
        // Flush after completing a record so records never straddle
        // blocks; a due checkpoint forces the flush so its directory entry
        // lands exactly on a block boundary.
        if self.inst_count == self.next_checkpoint {
            self.flush_block()?;
            self.checkpoints.push(Checkpoint {
                insts: self.inst_count,
                offset: self.body.len() as u64,
                pc: self.last_pc,
                mem_addr: self.last_mem_addr,
            });
            let every = self.meta.checkpoint_every.unwrap_or(u64::MAX);
            self.next_checkpoint = self.next_checkpoint.saturating_add(every);
        } else if self.raw.len() >= self.block_target {
            self.flush_block()?;
        }
        Ok(())
    }

    fn flush_block(&mut self) -> Result<(), EtrcError> {
        if self.n_records == 0 {
            return Ok(());
        }
        let crc = crc32(&self.raw);
        let comp = lzss_compress(&self.raw);
        let (encoding, payload): (u8, &[u8]) = match &comp {
            Some(comp) => (ENC_LZSS, comp),
            None => (ENC_RAW, &self.raw),
        };
        let mut header = [0u8; BLOCK_HEADER_LEN];
        header[0..4].copy_from_slice(&self.n_records.to_le_bytes());
        header[4..8].copy_from_slice(&(self.raw.len() as u32).to_le_bytes());
        header[8..12].copy_from_slice(&(payload.len() as u32).to_le_bytes());
        header[12] = encoding;
        header[13..17].copy_from_slice(&crc.to_le_bytes());
        if self.meta.checkpoint_every.is_some() {
            self.body.extend_from_slice(&header);
            self.body.extend_from_slice(payload);
        } else {
            self.sink.write_all(&header)?;
            self.sink.write_all(payload)?;
        }
        self.raw.clear();
        self.n_records = 0;
        // Each block decodes independently: deltas restart from zero.
        self.delta = DeltaState::default();
        Ok(())
    }

    /// Flushes the final block, writes the end marker and trailer, and
    /// returns the total number of instruction records written.
    pub fn finish(mut self) -> Result<u64, EtrcError> {
        self.flush_block()?;
        if self.meta.checkpoint_every.is_some() {
            self.sink
                .write_all(&encode_header(&self.meta, &self.checkpoints)?)?;
            self.sink.write_all(&self.body)?;
        }
        self.sink.write_all(&[0u8; BLOCK_HEADER_LEN])?;
        let mut trailer = [0u8; TRAILER_LEN];
        trailer[0..8].copy_from_slice(&END_MAGIC);
        trailer[8..16].copy_from_slice(&self.inst_count.to_le_bytes());
        let crc = crc32(&trailer[0..16]);
        trailer[16..20].copy_from_slice(&crc.to_le_bytes());
        self.sink.write_all(&trailer)?;
        self.sink.flush()?;
        Ok(self.inst_count)
    }
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// Aggregate statistics collected while reading a trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Instruction records decoded so far.
    pub insts: u64,
    /// Data blocks decoded so far (excluding the end marker).
    pub blocks: u64,
    /// Sum of uncompressed block payload bytes.
    pub raw_bytes: u64,
    /// Sum of on-disk block payload bytes (after compression).
    pub compressed_bytes: u64,
    /// Total bytes consumed from the source, including framing.
    pub file_bytes: u64,
    /// Loads decoded.
    pub loads: u64,
    /// Stores decoded.
    pub stores: u64,
    /// Branches decoded.
    pub branches: u64,
    /// Checkpoint directory entries in the header (0 for version-1 files).
    pub checkpoints: u64,
}

/// Streaming `.etrc` decoder over any [`Read`] source.
///
/// Decodes one block at a time: block framing is read lazily, payloads are
/// CRC-checked before any record is decoded, and the trailer count is
/// verified against the number of records actually decoded.
pub struct EtrcReader<R: Read> {
    src: R,
    meta: TraceMeta,
    block: Vec<u8>,
    cursor: usize,
    records_left: u32,
    delta: DeltaState,
    stats: TraceStats,
    done: bool,
    checkpoints: Vec<Checkpoint>,
    header_len: u64,
}

impl<R: Read> EtrcReader<R> {
    /// Opens a trace, parsing and CRC-checking the header.
    pub fn new(mut src: R) -> Result<Self, EtrcError> {
        let (meta, header_bytes, checkpoints) = decode_header(&mut src)?;
        Ok(Self {
            src,
            meta,
            block: Vec::new(),
            cursor: 0,
            records_left: 0,
            delta: DeltaState::default(),
            stats: TraceStats {
                file_bytes: header_bytes,
                checkpoints: checkpoints.len() as u64,
                ..TraceStats::default()
            },
            done: false,
            checkpoints,
            header_len: header_bytes,
        })
    }

    /// The header metadata.
    pub fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    /// The header's checkpoint directory (empty for version-1 files).
    pub fn checkpoints(&self) -> &[Checkpoint] {
        &self.checkpoints
    }

    /// Statistics over everything decoded so far (complete once
    /// [`EtrcReader::next_inst`] has returned `Ok(None)`).
    pub fn stats(&self) -> TraceStats {
        self.stats
    }

    fn load_next_block(&mut self) -> Result<bool, EtrcError> {
        let mut header = [0u8; BLOCK_HEADER_LEN];
        read_exact_or(&mut self.src, &mut header, "block header")?;
        self.stats.file_bytes += BLOCK_HEADER_LEN as u64;
        let n_records = u32::from_le_bytes(header[0..4].try_into().unwrap());
        let raw_len = u32::from_le_bytes(header[4..8].try_into().unwrap()) as usize;
        let comp_len = u32::from_le_bytes(header[8..12].try_into().unwrap()) as usize;
        let encoding = header[12];
        let crc = u32::from_le_bytes(header[13..17].try_into().unwrap());
        if n_records == 0 {
            // End-of-blocks marker: every field must be zero, then the
            // trailer follows.
            if header != [0u8; BLOCK_HEADER_LEN] {
                return Err(EtrcError::Corrupt("non-zero end-of-blocks marker".into()));
            }
            let mut trailer = [0u8; TRAILER_LEN];
            read_exact_or(&mut self.src, &mut trailer, "trailer")?;
            self.stats.file_bytes += TRAILER_LEN as u64;
            if trailer[0..8] != END_MAGIC {
                return Err(EtrcError::Corrupt("bad trailer magic".into()));
            }
            if crc32(&trailer[0..16]) != u32::from_le_bytes(trailer[16..20].try_into().unwrap()) {
                return Err(EtrcError::Crc {
                    what: "trailer",
                    block: 0,
                });
            }
            let declared = u64::from_le_bytes(trailer[8..16].try_into().unwrap());
            if declared != self.stats.insts {
                return Err(EtrcError::Corrupt(format!(
                    "trailer declares {declared} records but {} were decoded",
                    self.stats.insts
                )));
            }
            self.done = true;
            return Ok(false);
        }
        let mut payload = vec![0u8; comp_len];
        read_exact_or(&mut self.src, &mut payload, "block payload")?;
        self.stats.file_bytes += comp_len as u64;
        let block_index = self.stats.blocks;
        let raw = match encoding {
            ENC_RAW => {
                if comp_len != raw_len {
                    return Err(EtrcError::Corrupt(format!(
                        "block {block_index}: raw block with comp_len {comp_len} != raw_len {raw_len}"
                    )));
                }
                payload
            }
            ENC_LZSS => lzss_decompress(&payload, raw_len, block_index)?,
            other => {
                return Err(EtrcError::Corrupt(format!(
                    "block {block_index}: unknown encoding {other}"
                )));
            }
        };
        if crc32(&raw) != crc {
            return Err(EtrcError::Crc {
                what: "block",
                block: block_index,
            });
        }
        self.stats.blocks += 1;
        self.stats.raw_bytes += raw_len as u64;
        self.stats.compressed_bytes += comp_len as u64;
        self.block = raw;
        self.cursor = 0;
        self.records_left = n_records;
        self.delta = DeltaState::default();
        Ok(true)
    }

    /// Decodes the next instruction, or returns `Ok(None)` at a clean end of
    /// trace (end marker + verified trailer).
    pub fn next_inst(&mut self) -> Result<Option<DynInst>, EtrcError> {
        while self.records_left == 0 {
            if self.done {
                return Ok(None);
            }
            if !self.load_next_block()? {
                return Ok(None);
            }
        }
        let inst = decode_record(&self.block, &mut self.cursor, &mut self.delta)?;
        self.records_left -= 1;
        if self.records_left == 0 && self.cursor != self.block.len() {
            return Err(EtrcError::Corrupt(format!(
                "block {}: {} payload bytes left after the last record",
                self.stats.blocks.saturating_sub(1),
                self.block.len() - self.cursor
            )));
        }
        self.stats.insts += 1;
        if inst.is_load() {
            self.stats.loads += 1;
        } else if inst.is_store() {
            self.stats.stores += 1;
        } else if inst.is_branch() {
            self.stats.branches += 1;
        }
        Ok(Some(inst))
    }
}

impl<R: Read + Seek> EtrcReader<R> {
    /// Repositions the reader at the greatest checkpoint at or before
    /// `target_insts` and returns that checkpoint's instruction count (the
    /// caller decode-discards the remaining `target - returned` records).
    ///
    /// Errors on version-1 files, which carry no directory. After a seek,
    /// [`TraceStats::insts`] restarts from the checkpoint's count, so the
    /// trailer verification still requires the suffix to decode completely;
    /// block/byte statistics only cover what this reader actually decoded.
    pub fn seek_to_checkpoint(&mut self, target_insts: u64) -> Result<u64, EtrcError> {
        let entry = match self
            .checkpoints
            .iter()
            .rev()
            .find(|c| c.insts <= target_insts)
        {
            Some(c) => *c,
            None => {
                return Err(EtrcError::Corrupt(
                    "trace has no checkpoint directory to seek in".into(),
                ));
            }
        };
        self.src
            .seek(SeekFrom::Start(self.header_len + entry.offset))?;
        self.block.clear();
        self.cursor = 0;
        self.records_left = 0;
        self.delta = DeltaState::default();
        self.done = false;
        self.stats.insts = entry.insts;
        Ok(entry.insts)
    }
}

// ---------------------------------------------------------------------------
// FileTrace: the TraceSource adapter
// ---------------------------------------------------------------------------

/// A [`TraceSource`] replaying an `.etrc` file.
///
/// Correct-path instructions stream from the file; wrong-path instructions
/// are re-synthesized from the recorded [`WrongPathSpec`], which reproduces
/// the generator's wrong-path stream exactly (see [`crate::wrongpath`]).
///
/// # Panics
///
/// [`TraceSource::next_inst`] panics if the file turns out to be corrupt
/// mid-stream (CRC mismatch, truncation): silently ending the trace early
/// would skew simulation results, and `elsq-lab trace verify` exists to
/// check files up front. A clean end of trace returns `None` as usual.
pub struct FileTrace {
    reader: EtrcReader<BufReader<File>>,
    wrong_path: Option<WrongPathSynth>,
    path: PathBuf,
}

impl FileTrace {
    /// Opens `path`, parsing and CRC-checking the header.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, EtrcError> {
        let path = path.as_ref().to_path_buf();
        let reader = EtrcReader::new(BufReader::new(File::open(&path)?))?;
        let wrong_path = reader.meta().wrong_path.map(WrongPathSynth::from_spec);
        Ok(Self {
            reader,
            wrong_path,
            path,
        })
    }

    /// The header metadata.
    pub fn meta(&self) -> &TraceMeta {
        self.reader.meta()
    }

    /// The path the trace was opened from.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl TraceSource for FileTrace {
    fn next_inst(&mut self) -> Option<DynInst> {
        self.reader
            .next_inst()
            .unwrap_or_else(|e| panic!("corrupt trace {}: {e}", self.path.display()))
    }

    fn skip_insts(&mut self, n: u64) -> u64 {
        let current = self.reader.stats().insts;
        let target = current.saturating_add(n);
        // Seek only when a checkpoint lies strictly ahead of the cursor;
        // otherwise decode-discard is already the fastest path. Skipped
        // blocks also skip their CRC checks — `trace verify` is the tool
        // for whole-file integrity.
        let best = self
            .reader
            .checkpoints()
            .iter()
            .rev()
            .find(|c| c.insts <= target)
            .copied();
        if let Some(entry) = best {
            if entry.insts > current {
                self.reader
                    .seek_to_checkpoint(target)
                    .unwrap_or_else(|e| panic!("corrupt trace {}: {e}", self.path.display()));
            }
        }
        let mut skipped = self.reader.stats().insts - current;
        while skipped < n {
            if self.next_inst().is_none() {
                break;
            }
            skipped += 1;
        }
        skipped
    }

    fn wrong_path_inst(&mut self, pc: u64) -> DynInst {
        match &mut self.wrong_path {
            Some(synth) => synth.inst(pc),
            None => crate::trace::default_wrong_path_inst(pc),
        }
    }

    fn name(&self) -> &str {
        &self.reader.meta().name
    }

    fn wrong_path_spec(&self) -> Option<WrongPathSpec> {
        self.reader.meta().wrong_path
    }
}

// ---------------------------------------------------------------------------
// Record / inspect / convenience
// ---------------------------------------------------------------------------

/// Records up to `insts` correct-path instructions from `source` into
/// `sink`, capturing the source's name and wrong-path spec in the header.
///
/// Stops early if a finite source is exhausted. Returns the written
/// [`TraceMeta`] and the number of instructions recorded.
pub fn record<W: Write>(
    source: &mut dyn TraceSource,
    insts: u64,
    seed: u64,
    suite_tag: u8,
    suite_index: Option<u8>,
    sink: W,
) -> Result<(TraceMeta, u64), EtrcError> {
    record_with_checkpoints(source, insts, seed, suite_tag, suite_index, None, sink)
}

/// [`record`], with an optional checkpoint interval: `Some(every)` emits a
/// version-2 file whose header directory holds a checkpoint every `every`
/// instructions (the whole body is buffered in memory until the directory
/// is complete — fine for the trace sizes sampled simulation uses).
pub fn record_with_checkpoints<W: Write>(
    source: &mut dyn TraceSource,
    insts: u64,
    seed: u64,
    suite_tag: u8,
    suite_index: Option<u8>,
    checkpoint_every: Option<u64>,
    sink: W,
) -> Result<(TraceMeta, u64), EtrcError> {
    let meta = TraceMeta {
        version: if checkpoint_every.is_some() {
            FORMAT_VERSION_V2
        } else {
            FORMAT_VERSION
        },
        name: source.name().to_owned(),
        seed,
        suite_tag,
        suite_index,
        wrong_path: source.wrong_path_spec(),
        block_target: DEFAULT_BLOCK_TARGET,
        checkpoint_every,
    };
    let mut writer = EtrcWriter::new(sink, &meta)?;
    for _ in 0..insts {
        match source.next_inst() {
            Some(inst) => writer.write_inst(&inst)?,
            None => break,
        }
    }
    let written = writer.finish()?;
    Ok((meta, written))
}

/// Fully decodes a trace from `src`, checking every CRC, record and the
/// trailer count, and returns the header metadata plus aggregate stats.
///
/// This is the engine behind `elsq-lab trace info` and `trace verify`.
pub fn inspect<R: Read>(src: R) -> Result<(TraceMeta, TraceStats), EtrcError> {
    let mut reader = EtrcReader::new(src)?;
    while reader.next_inst()?.is_some() {}
    Ok((reader.meta().clone(), reader.stats()))
}

/// Encodes `insts` into an in-memory `.etrc` image.
pub fn write_trace(insts: &[DynInst], meta: &TraceMeta) -> Result<Vec<u8>, EtrcError> {
    let mut bytes = Vec::new();
    let mut writer = EtrcWriter::new(&mut bytes, meta)?;
    for inst in insts {
        writer.write_inst(inst)?;
    }
    writer.finish()?;
    Ok(bytes)
}

/// Decodes a complete in-memory `.etrc` image.
pub fn read_trace(bytes: &[u8]) -> Result<(TraceMeta, Vec<DynInst>), EtrcError> {
    let mut reader = EtrcReader::new(bytes)?;
    let mut insts = Vec::new();
    while let Some(inst) = reader.next_inst()? {
        insts.push(inst);
    }
    Ok((reader.meta().clone(), insts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::InstBuilder;
    use crate::trace::VecTrace;

    fn sample_stream(n: usize) -> Vec<DynInst> {
        let mut insts = Vec::with_capacity(n);
        for i in 0..n as u64 {
            let pc = 0x40_0000 + i * 4;
            let inst = match i % 5 {
                0 => InstBuilder::load(pc, 0x1000_0000 + i * 8, 8)
                    .dst(ArchReg::int(1))
                    .src(ArchReg::int(2))
                    .build(),
                1 => InstBuilder::store(pc, 0x1000_0000 + i * 8, 4)
                    .src(ArchReg::int(1))
                    .src(ArchReg::int(3))
                    .build(),
                2 => InstBuilder::branch(pc, i % 2 == 0, i % 10 == 2, pc + 64)
                    .src(ArchReg::int(4))
                    .build(),
                3 => InstBuilder::alu(pc, OpClass::FpMul)
                    .dst(ArchReg::fp(5))
                    .src(ArchReg::fp(6))
                    .src(ArchReg::fp(7))
                    .build(),
                _ => InstBuilder::alu(pc, OpClass::IntAlu)
                    .dst(ArchReg::int(8))
                    .src(ArchReg::int(8))
                    .latency(3)
                    .build(),
            };
            insts.push(inst);
        }
        insts
    }

    #[test]
    fn round_trip_preserves_stream_and_meta() {
        let insts = sample_stream(500);
        let mut meta = TraceMeta::named("rt", 42);
        meta.suite_tag = SUITE_INT;
        meta.suite_index = Some(3);
        meta.wrong_path = Some(WrongPathSpec {
            seed: 42,
            region_base: 0x8000,
            region_size: 1 << 20,
            load_rate: 0.25,
        });
        let bytes = write_trace(&insts, &meta).unwrap();
        let (back_meta, back) = read_trace(&bytes).unwrap();
        assert_eq!(back_meta, meta);
        assert_eq!(back, insts);
    }

    #[test]
    fn multi_block_traces_round_trip() {
        let insts = sample_stream(4000);
        let mut meta = TraceMeta::named("blocks", 1);
        meta.block_target = 512; // force many blocks
        let bytes = write_trace(&insts, &meta).unwrap();
        let mut reader = EtrcReader::new(&bytes[..]).unwrap();
        let mut back = Vec::new();
        while let Some(i) = reader.next_inst().unwrap() {
            back.push(i);
        }
        assert_eq!(back, insts);
        let stats = reader.stats();
        assert!(
            stats.blocks > 3,
            "expected several blocks, got {}",
            stats.blocks
        );
        assert_eq!(stats.insts, 4000);
        assert_eq!(stats.loads, 800);
        assert_eq!(stats.stores, 800);
        assert_eq!(stats.branches, 800);
        assert_eq!(stats.file_bytes as usize, bytes.len());
        // Delta-encoded instruction streams compress well.
        assert!(stats.compressed_bytes < stats.raw_bytes);
    }

    #[test]
    fn empty_trace_round_trips() {
        let bytes = write_trace(&[], &TraceMeta::named("empty", 0)).unwrap();
        let (_, back) = read_trace(&bytes).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn truncated_file_is_detected() {
        let bytes = write_trace(&sample_stream(100), &TraceMeta::named("t", 0)).unwrap();
        for cut in [bytes.len() - 1, bytes.len() - TRAILER_LEN, 40, 9] {
            let err = read_trace(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, EtrcError::Truncated(_) | EtrcError::Crc { .. }),
                "cut at {cut} gave {err}"
            );
        }
    }

    #[test]
    fn corrupt_block_fails_crc() {
        let insts = sample_stream(200);
        let bytes = write_trace(&insts, &TraceMeta::named("c", 0)).unwrap();
        // Flip a byte inside the first block payload (safely past the
        // header and block framing).
        let header_len = HEADER_FIXED_LEN + 1 + 4; // name "c" = 1 byte
        let mut bad = bytes.clone();
        bad[header_len + BLOCK_HEADER_LEN + 10] ^= 0x40;
        let err = read_trace(&bad).unwrap_err();
        assert!(
            matches!(
                err,
                EtrcError::Crc { .. } | EtrcError::Corrupt(_) | EtrcError::Truncated(_)
            ),
            "got {err}"
        );
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let bytes = write_trace(&[], &TraceMeta::named("v", 0)).unwrap();
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(read_trace(&bad).unwrap_err(), EtrcError::BadMagic));
        let mut future = bytes.clone();
        future[8] = 99; // version 99
                        // (CRC also breaks, but the version check runs first.)
        assert!(matches!(
            read_trace(&future).unwrap_err(),
            EtrcError::UnsupportedVersion(99)
        ));
        let mut crc_broken = bytes;
        crc_broken[16] ^= 1; // seed byte: header CRC must catch it
        assert!(matches!(
            read_trace(&crc_broken).unwrap_err(),
            EtrcError::Crc { what: "header", .. }
        ));
    }

    #[test]
    fn reserved_header_flags_are_rejected() {
        let mut bytes = write_trace(&[], &TraceMeta::named("f", 0)).unwrap();
        // Set a reserved flag bit and re-sign the header CRC so only the
        // flag check can reject the file.
        bytes[10] |= 0x02;
        let crc_at = HEADER_FIXED_LEN + 1; // name "f" = 1 byte
        let crc = crc32(&bytes[..crc_at]);
        bytes[crc_at..crc_at + 4].copy_from_slice(&crc.to_le_bytes());
        let err = read_trace(&bytes).unwrap_err();
        assert!(
            matches!(&err, EtrcError::Corrupt(msg) if msg.contains("reserved header flag")),
            "got {err}"
        );
    }

    #[test]
    fn writer_rejects_what_the_reader_would_refuse() {
        let mut meta = TraceMeta::named("w", 0);
        meta.block_target = 0;
        assert!(write_trace(&[], &meta).is_err(), "zero block target");
        let mut meta = TraceMeta::named("w", 0);
        meta.wrong_path = Some(WrongPathSpec {
            seed: 0,
            region_base: 0,
            region_size: 64,
            load_rate: 1.5,
        });
        assert!(write_trace(&[], &meta).is_err(), "load rate out of range");
        let mut meta = TraceMeta::named("w", 0);
        meta.version = 2;
        assert!(write_trace(&[], &meta).is_err(), "foreign version");
    }

    #[test]
    fn reserved_suite_index_is_rejected_at_write_time() {
        let mut meta = TraceMeta::named("slot", 0);
        meta.suite_index = Some(0xFF);
        let err = write_trace(&[], &meta).unwrap_err();
        assert!(matches!(err, EtrcError::Corrupt(_)), "got {err}");
        meta.suite_index = Some(0xFE);
        let bytes = write_trace(&[], &meta).unwrap();
        assert_eq!(read_trace(&bytes).unwrap().0.suite_index, Some(0xFE));
    }

    #[test]
    fn trailer_count_mismatch_is_detected() {
        let bytes = write_trace(&sample_stream(10), &TraceMeta::named("n", 0)).unwrap();
        let mut bad = bytes.clone();
        // Rewrite the trailer count and fix its CRC so only the count lies.
        let t = bad.len() - TRAILER_LEN;
        bad[t + 8..t + 16].copy_from_slice(&11u64.to_le_bytes());
        let crc = crc32(&bad[t..t + 16]);
        bad[t + 16..t + 20].copy_from_slice(&crc.to_le_bytes());
        let err = read_trace(&bad).unwrap_err();
        assert!(matches!(err, EtrcError::Corrupt(_)), "got {err}");
    }

    #[test]
    fn record_captures_name_and_wrong_path_spec() {
        struct SpeccedVec(VecTrace);
        impl TraceSource for SpeccedVec {
            fn next_inst(&mut self) -> Option<DynInst> {
                self.0.next_inst()
            }
            fn name(&self) -> &str {
                "specced"
            }
            fn wrong_path_spec(&self) -> Option<WrongPathSpec> {
                Some(WrongPathSpec {
                    seed: 9,
                    region_base: 0x100,
                    region_size: 4096,
                    load_rate: 0.5,
                })
            }
        }
        let mut src = SpeccedVec(VecTrace::new(sample_stream(64)));
        let mut bytes = Vec::new();
        let (meta, written) = record(&mut src, 1000, 7, SUITE_FP, Some(2), &mut bytes).unwrap();
        assert_eq!(written, 64, "finite source stops early");
        assert_eq!(meta.name, "specced");
        assert_eq!(meta.seed, 7);
        assert_eq!(meta.suite_tag, SUITE_FP);
        assert_eq!(meta.suite_index, Some(2));
        assert!(meta.wrong_path.is_some());
        let (read_meta, insts) = read_trace(&bytes).unwrap();
        assert_eq!(read_meta, meta);
        assert_eq!(insts.len(), 64);
    }

    #[test]
    fn file_trace_replays_and_synthesizes_wrong_path() {
        let dir = std::env::temp_dir().join(format!("etrc-ft-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.etrc");
        let insts = sample_stream(128);
        let spec = WrongPathSpec {
            seed: 11,
            region_base: 0x2000,
            region_size: 1 << 16,
            load_rate: 0.25,
        };
        let mut meta = TraceMeta::named("file-trace", 11);
        meta.wrong_path = Some(spec);
        std::fs::write(&path, write_trace(&insts, &meta).unwrap()).unwrap();

        let mut ft = FileTrace::open(&path).unwrap();
        assert_eq!(ft.name(), "file-trace");
        assert_eq!(ft.wrong_path_spec(), Some(spec));
        let mut replayed = Vec::new();
        while let Some(i) = ft.next_inst() {
            replayed.push(i);
        }
        assert_eq!(replayed, insts);
        // Wrong path matches a synth built from the same spec.
        let mut reference = WrongPathSynth::from_spec(spec);
        let mut ft2 = FileTrace::open(&path).unwrap();
        for i in 0..64 {
            assert_eq!(ft2.wrong_path_inst(i * 4), reference.inst(i * 4));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn inspect_reports_counts_and_compression() {
        let insts = sample_stream(1000);
        let bytes = write_trace(&insts, &TraceMeta::named("i", 0)).unwrap();
        let (meta, stats) = inspect(&bytes[..]).unwrap();
        assert_eq!(meta.name, "i");
        assert_eq!(stats.insts, 1000);
        assert_eq!(stats.loads + stats.stores + stats.branches, 600);
        assert!(stats.raw_bytes > 0);
    }

    #[test]
    fn lzss_round_trips_pathological_inputs() {
        let cases: Vec<Vec<u8>> = vec![
            vec![],
            vec![0x55],
            vec![7; 10_000],
            (0..=255u8).cycle().take(5000).collect(),
            b"abcabcabcabcabcabcabcabcabcd".to_vec(),
            (0..4096u32).flat_map(|i| (i % 7).to_le_bytes()).collect(),
        ];
        for raw in cases {
            match lzss_compress(&raw) {
                Some(comp) => {
                    assert!(comp.len() < raw.len());
                    let back = lzss_decompress(&comp, raw.len(), 0).unwrap();
                    assert_eq!(back, raw);
                }
                None => { /* incompressible: stored raw, nothing to check */ }
            }
        }
    }

    #[test]
    fn varint_zigzag_round_trip() {
        for v in [
            0i64,
            1,
            -1,
            2,
            -2,
            63,
            -64,
            1 << 20,
            -(1 << 40),
            i64::MAX,
            i64::MIN,
        ] {
            let mut buf = Vec::new();
            write_varint(&mut buf, zigzag(v));
            let mut cursor = 0;
            assert_eq!(unzigzag(read_varint(&buf, &mut cursor).unwrap()), v);
            assert_eq!(cursor, buf.len());
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    // -- version-2 checkpoint directory ------------------------------------

    fn checkpointed_bytes(n: usize, every: u64) -> (Vec<DynInst>, Vec<u8>) {
        let insts = sample_stream(n);
        let mut meta = TraceMeta::named("ckpt", 5).with_checkpoints(every);
        meta.block_target = 512; // several organic flushes between checkpoints
        let bytes = write_trace(&insts, &meta).unwrap();
        (insts, bytes)
    }

    #[test]
    fn checkpointed_trace_round_trips_with_directory() {
        let (insts, bytes) = checkpointed_bytes(1000, 250);
        let mut reader = EtrcReader::new(&bytes[..]).unwrap();
        assert_eq!(reader.meta().version, FORMAT_VERSION_V2);
        assert_eq!(reader.meta().checkpoint_every, Some(250));
        // Entry 0 plus one per full interval.
        let checkpoints = reader.checkpoints().to_vec();
        assert_eq!(checkpoints.len(), 5);
        assert_eq!(checkpoints[0], Checkpoint::default());
        for (i, c) in checkpoints.iter().enumerate() {
            assert_eq!(c.insts, i as u64 * 250);
        }
        let mut back = Vec::new();
        while let Some(i) = reader.next_inst().unwrap() {
            back.push(i);
        }
        assert_eq!(back, insts);
        assert_eq!(reader.stats().checkpoints, 5);
        assert_eq!(reader.stats().file_bytes as usize, bytes.len());
    }

    #[test]
    fn seek_decodes_the_same_suffix_the_prefix_decode_reaches() {
        let (insts, bytes) = checkpointed_bytes(1000, 200);
        for target in [0u64, 199, 200, 450, 999, 5000] {
            let mut reader = EtrcReader::new(std::io::Cursor::new(&bytes)).unwrap();
            let resumed = reader.seek_to_checkpoint(target).unwrap();
            assert_eq!(resumed, (target / 200 * 200).min(1000));
            let mut suffix = Vec::new();
            while let Some(i) = reader.next_inst().unwrap() {
                suffix.push(i);
            }
            assert_eq!(
                suffix,
                insts[resumed as usize..],
                "suffix from checkpoint {resumed} diverged"
            );
        }
    }

    #[test]
    fn v1_files_have_no_directory_and_refuse_to_seek() {
        let bytes = write_trace(&sample_stream(100), &TraceMeta::named("v1", 0)).unwrap();
        let mut reader = EtrcReader::new(std::io::Cursor::new(&bytes)).unwrap();
        assert!(reader.checkpoints().is_empty());
        assert_eq!(reader.stats().checkpoints, 0);
        assert!(reader.meta().checkpoint_every.is_none());
        let err = reader.seek_to_checkpoint(50).unwrap_err();
        assert!(
            matches!(&err, EtrcError::Corrupt(msg) if msg.contains("no checkpoint directory")),
            "got {err}"
        );
    }

    #[test]
    fn corrupt_directory_entries_fail_the_header_crc() {
        let (_, bytes) = checkpointed_bytes(600, 200);
        // Flip a byte inside the directory (fixed header + name "ckpt" +
        // every/count + first entry lands well inside it).
        let mut bad = bytes.clone();
        bad[HEADER_FIXED_LEN + 4 + 12 + CHECKPOINT_ENTRY_LEN + 3] ^= 0x10;
        let err = read_trace(&bad).unwrap_err();
        assert!(
            matches!(err, EtrcError::Crc { what: "header", .. }),
            "got {err}"
        );
    }

    #[test]
    fn non_monotonic_directory_is_rejected_even_with_a_valid_crc() {
        let (_, bytes) = checkpointed_bytes(600, 200);
        let mut bad = bytes.clone();
        // Swap entries 1 and 2 (each CHECKPOINT_ENTRY_LEN bytes), then
        // re-sign the header CRC so only the monotonicity check can object.
        let dir_at = HEADER_FIXED_LEN + 4 + 12;
        let e1 = dir_at + CHECKPOINT_ENTRY_LEN;
        let e2 = e1 + CHECKPOINT_ENTRY_LEN;
        let tmp: Vec<u8> = bad[e1..e1 + CHECKPOINT_ENTRY_LEN].to_vec();
        bad.copy_within(e2..e2 + CHECKPOINT_ENTRY_LEN, e1);
        bad[e2..e2 + CHECKPOINT_ENTRY_LEN].copy_from_slice(&tmp);
        let crc_at = dir_at + 4 * CHECKPOINT_ENTRY_LEN;
        let crc = crc32(&bad[..crc_at]);
        bad[crc_at..crc_at + 4].copy_from_slice(&crc.to_le_bytes());
        let err = read_trace(&bad).unwrap_err();
        assert!(
            matches!(&err, EtrcError::Corrupt(msg) if msg.contains("strictly increasing")),
            "got {err}"
        );
    }

    #[test]
    fn writer_rejects_malformed_checkpoint_requests() {
        let meta = TraceMeta::named("z", 0).with_checkpoints(0);
        let err = write_trace(&[], &meta).unwrap_err();
        assert!(
            matches!(&err, EtrcError::Corrupt(msg) if msg.contains("zero instructions")),
            "got {err}"
        );
        // checkpoint_every without the version bump is a meta bug.
        let mut meta = TraceMeta::named("z", 0);
        meta.checkpoint_every = Some(100);
        assert!(write_trace(&[], &meta).is_err(), "v1 with a directory");
    }

    #[test]
    fn short_checkpointed_trace_keeps_only_the_start_entry() {
        let meta = TraceMeta::named("short", 0).with_checkpoints(1_000_000);
        let bytes = write_trace(&sample_stream(10), &meta).unwrap();
        let reader = EtrcReader::new(&bytes[..]).unwrap();
        assert_eq!(reader.checkpoints(), &[Checkpoint::default()]);
    }

    #[test]
    fn record_with_checkpoints_captures_the_directory() {
        let mut src = VecTrace::with_name(sample_stream(500), "rec");
        let mut bytes = Vec::new();
        let (meta, written) =
            record_with_checkpoints(&mut src, 500, 3, SUITE_NONE, None, Some(100), &mut bytes)
                .unwrap();
        assert_eq!(written, 500);
        assert_eq!(meta.version, FORMAT_VERSION_V2);
        assert_eq!(meta.checkpoint_every, Some(100));
        let (read_meta, insts) = read_trace(&bytes).unwrap();
        assert_eq!(read_meta, meta);
        assert_eq!(insts.len(), 500);
        let reader = EtrcReader::new(&bytes[..]).unwrap();
        assert_eq!(reader.checkpoints().len(), 6);
    }

    #[test]
    fn file_trace_skips_via_checkpoints_and_replays_the_same_suffix() {
        let dir = std::env::temp_dir().join(format!("etrc-skip-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.etrc");
        let insts = sample_stream(800);
        let mut meta = TraceMeta::named("skip", 7).with_checkpoints(150);
        meta.block_target = 512;
        std::fs::write(&path, write_trace(&insts, &meta).unwrap()).unwrap();

        // Skip from the start: lands past checkpoint 2 (insts 300).
        let mut ft = FileTrace::open(&path).unwrap();
        assert_eq!(ft.skip_insts(400), 400);
        let mut suffix = Vec::new();
        while let Some(i) = ft.next_inst() {
            suffix.push(i);
        }
        assert_eq!(suffix, insts[400..]);

        // Mid-stream skip after some decoding, and a skip past the end.
        let mut ft = FileTrace::open(&path).unwrap();
        for _ in 0..100 {
            ft.next_inst().unwrap();
        }
        assert_eq!(ft.skip_insts(250), 250);
        assert_eq!(ft.next_inst().unwrap(), insts[350]);
        assert_eq!(ft.skip_insts(10_000), 800 - 351);
        assert!(ft.next_inst().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn default_skip_matches_decode_discard_on_v1_files() {
        let dir = std::env::temp_dir().join(format!("etrc-skip-v1-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("v1.etrc");
        let insts = sample_stream(300);
        std::fs::write(
            &path,
            write_trace(&insts, &TraceMeta::named("v1", 0)).unwrap(),
        )
        .unwrap();
        let mut ft = FileTrace::open(&path).unwrap();
        assert_eq!(ft.skip_insts(120), 120);
        assert_eq!(ft.next_inst().unwrap(), insts[120]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
