//! Synthetic ISA for the ELSQ (Epoch-based Load/Store Queue) simulator.
//!
//! The simulator that accompanies the paper *"A Two-Level Load/Store Queue
//! Based on Execution Locality"* (ISCA 2008) is trace driven for data and
//! execution driven for timing: workload generators emit a stream of
//! [`DynInst`] dynamic instructions carrying explicit register dependences,
//! memory addresses and branch outcomes, while the processor models in
//! `elsq-cpu` compute cycle-level timing for that stream.
//!
//! This crate defines the common vocabulary shared by every other crate:
//!
//! * [`ArchReg`] / [`RegClass`] — architectural registers (32 integer +
//!   32 floating point, MIPS/Alpha style),
//! * [`Op`] and [`OpClass`] — operation kinds with execution latencies,
//! * [`DynInst`] — a single dynamic instruction,
//! * [`MemAccess`] and [`BranchInfo`] — memory and control-flow payloads,
//! * [`TraceSource`] — the interface workload generators implement, together
//!   with the [`trace::VecTrace`] helper used throughout the test suites,
//! * [`etrc`] — the compressed `.etrc` on-disk trace format (writer, reader
//!   and the [`FileTrace`] replay source) and [`wrongpath`] — the seeded
//!   wrong-path synthesizer whose spec the format records for exact replay,
//! * [`SharedStream`] / [`SharedCursor`] — a captured correct-path stream
//!   fanned out read-only to many pipeline instances (batched sweeps).
//!
//! # Example
//!
//! ```
//! use elsq_isa::{DynInst, InstBuilder, ArchReg, RegClass, TraceSource};
//! use elsq_isa::trace::VecTrace;
//!
//! let r1 = ArchReg::int(1);
//! let r2 = ArchReg::int(2);
//! let load = InstBuilder::load(0x1000, 0x8000_0000, 8)
//!     .dst(r1)
//!     .src(r2)
//!     .build();
//! assert!(load.is_load());
//!
//! let mut trace = VecTrace::new(vec![load]);
//! let inst = trace.next_inst().expect("one instruction");
//! assert_eq!(inst.mem.unwrap().addr, 0x8000_0000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod etrc;
pub mod inst;
pub mod op;
pub mod reg;
pub mod shared;
pub mod trace;
pub mod wrongpath;

pub use etrc::FileTrace;
pub use inst::{BranchInfo, DynInst, InstBuilder, MemAccess};
pub use op::{Op, OpClass};
pub use reg::{ArchReg, RegClass, NUM_ARCH_REGS_PER_CLASS};
pub use shared::{SharedCursor, SharedStream};
pub use trace::TraceSource;
pub use wrongpath::{WrongPathSpec, WrongPathSynth};
