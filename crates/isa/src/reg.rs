//! Architectural registers.
//!
//! The synthetic ISA exposes two register classes, integer and floating
//! point, each with [`NUM_ARCH_REGS_PER_CLASS`] architectural names. Register
//! 0 of the integer class is the constant-zero register (as in MIPS/Alpha)
//! and is never renamed; workload generators may still name it as a source.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of architectural registers in each class.
pub const NUM_ARCH_REGS_PER_CLASS: u8 = 32;

/// Register class: integer or floating point.
///
/// The class determines which issue queue and which physical register file a
/// renamed instruction uses in the processor models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RegClass {
    /// Integer / address registers.
    Int,
    /// Floating-point registers.
    Fp,
}

impl fmt::Display for RegClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegClass::Int => write!(f, "int"),
            RegClass::Fp => write!(f, "fp"),
        }
    }
}

/// An architectural register: a class plus an index within that class.
///
/// # Example
///
/// ```
/// use elsq_isa::{ArchReg, RegClass};
///
/// let r = ArchReg::int(5);
/// assert_eq!(r.class(), RegClass::Int);
/// assert_eq!(r.index(), 5);
/// assert!(!r.is_zero());
/// assert!(ArchReg::int(0).is_zero());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ArchReg {
    class: RegClass,
    index: u8,
}

impl ArchReg {
    /// Creates a register of the given class.
    ///
    /// # Panics
    ///
    /// Panics if `index >= NUM_ARCH_REGS_PER_CLASS`.
    pub fn new(class: RegClass, index: u8) -> Self {
        assert!(
            index < NUM_ARCH_REGS_PER_CLASS,
            "architectural register index {index} out of range"
        );
        Self { class, index }
    }

    /// Creates an integer register.
    ///
    /// # Panics
    ///
    /// Panics if `index >= NUM_ARCH_REGS_PER_CLASS`.
    pub fn int(index: u8) -> Self {
        Self::new(RegClass::Int, index)
    }

    /// Creates a floating-point register.
    ///
    /// # Panics
    ///
    /// Panics if `index >= NUM_ARCH_REGS_PER_CLASS`.
    pub fn fp(index: u8) -> Self {
        Self::new(RegClass::Fp, index)
    }

    /// The register class.
    pub fn class(&self) -> RegClass {
        self.class
    }

    /// The index within the class.
    pub fn index(&self) -> u8 {
        self.index
    }

    /// Whether this is the hard-wired integer zero register, which is never
    /// renamed and is always ready.
    pub fn is_zero(&self) -> bool {
        self.class == RegClass::Int && self.index == 0
    }

    /// A dense index over both classes, useful for flat rename tables.
    /// Integer registers occupy `0..32`, floating point `32..64`.
    pub fn flat_index(&self) -> usize {
        match self.class {
            RegClass::Int => self.index as usize,
            RegClass::Fp => NUM_ARCH_REGS_PER_CLASS as usize + self.index as usize,
        }
    }

    /// Total number of architectural registers across both classes.
    pub const fn total_count() -> usize {
        2 * NUM_ARCH_REGS_PER_CLASS as usize
    }
}

impl fmt::Display for ArchReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.class {
            RegClass::Int => write!(f, "r{}", self.index),
            RegClass::Fp => write!(f, "f{}", self.index),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_and_fp_constructors() {
        let r = ArchReg::int(3);
        assert_eq!(r.class(), RegClass::Int);
        assert_eq!(r.index(), 3);
        let f = ArchReg::fp(7);
        assert_eq!(f.class(), RegClass::Fp);
        assert_eq!(f.index(), 7);
    }

    #[test]
    fn zero_register_detection() {
        assert!(ArchReg::int(0).is_zero());
        assert!(!ArchReg::int(1).is_zero());
        assert!(!ArchReg::fp(0).is_zero());
    }

    #[test]
    fn flat_index_is_dense_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..NUM_ARCH_REGS_PER_CLASS {
            assert!(seen.insert(ArchReg::int(i).flat_index()));
            assert!(seen.insert(ArchReg::fp(i).flat_index()));
        }
        assert_eq!(seen.len(), ArchReg::total_count());
        assert_eq!(
            seen.iter().max().copied().unwrap(),
            ArchReg::total_count() - 1
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_index_panics() {
        let _ = ArchReg::int(NUM_ARCH_REGS_PER_CLASS);
    }

    #[test]
    fn display_formats() {
        assert_eq!(ArchReg::int(4).to_string(), "r4");
        assert_eq!(ArchReg::fp(9).to_string(), "f9");
        assert_eq!(RegClass::Int.to_string(), "int");
        assert_eq!(RegClass::Fp.to_string(), "fp");
    }

    #[test]
    fn ordering_is_by_class_then_index() {
        assert!(ArchReg::int(31) < ArchReg::fp(0));
        assert!(ArchReg::int(1) < ArchReg::int(2));
    }
}
