//! Trace sources: the interface between workload generators and CPU models.
//!
//! A [`TraceSource`] produces the correct-path dynamic instruction stream one
//! instruction at a time, and can additionally synthesize *wrong-path*
//! instructions that the front end fetches after a mispredicted branch until
//! that branch resolves. Wrong-path instructions never commit, but they do
//! occupy LSQ entries and access caches, which is essential to reproduce the
//! paper's Table 2 observation that SPEC INT LSQ activity grows with window
//! aggressiveness.

use crate::inst::{DynInst, InstBuilder};
use crate::op::OpClass;
use crate::reg::ArchReg;
use crate::wrongpath::WrongPathSpec;

/// The wrong-path instruction sources emit when they have no richer model:
/// a simple integer ALU op. Shared by the [`TraceSource`] default and by
/// spec-less [`crate::etrc::FileTrace`] replays, so the two can never
/// diverge.
pub fn default_wrong_path_inst(pc: u64) -> DynInst {
    InstBuilder::alu(pc, OpClass::IntAlu)
        .dst(ArchReg::int(1))
        .src(ArchReg::int(1))
        .wrong_path(true)
        .build()
}

/// A source of dynamic instructions.
///
/// Implementations must be deterministic for a given construction seed so
/// experiments are reproducible, and `Send` so the suite driver can fan the
/// independent `(config, workload)` pairs of a suite out across threads.
pub trait TraceSource: Send {
    /// Returns the next correct-path instruction, or `None` when the trace is
    /// exhausted. Most synthetic generators are infinite and never return
    /// `None`; the simulator stops after a configured number of commits.
    fn next_inst(&mut self) -> Option<DynInst>;

    /// Returns a wrong-path instruction to fetch at `pc`.
    ///
    /// The default implementation produces a simple integer ALU instruction
    /// ([`default_wrong_path_inst`]); generators override this to produce a
    /// realistic mix including wrong-path loads and stores.
    fn wrong_path_inst(&mut self, pc: u64) -> DynInst {
        default_wrong_path_inst(pc)
    }

    /// A short human-readable name for reports.
    fn name(&self) -> &str {
        "trace"
    }

    /// Skips up to `n` correct-path instructions, advancing architectural
    /// position without handing them to the caller, and returns how many
    /// were actually skipped (fewer only when the trace ends first).
    ///
    /// The default decode-discards through [`TraceSource::next_inst`];
    /// sources with random access (an in-memory capture, a checkpointed
    /// `.etrc` file) override it with an O(1)-per-checkpoint jump. Skipped
    /// instructions are invisible to the skipper, so a fast-forwarding
    /// simulator that wants to warm caches must consume them with
    /// `next_inst` instead.
    fn skip_insts(&mut self, n: u64) -> u64 {
        let mut skipped = 0;
        while skipped < n {
            if self.next_inst().is_none() {
                break;
            }
            skipped += 1;
        }
        skipped
    }

    /// The parameters of this source's wrong-path synthesis, if it is a
    /// pure function of a [`WrongPathSpec`].
    ///
    /// Sources that return `Some` can be recorded to an `.etrc` trace file
    /// (see [`crate::etrc`]) and replayed bit-for-bit: the recorder stores
    /// the spec in the trace header instead of recording the demand-driven
    /// wrong-path stream, and the replaying [`crate::etrc::FileTrace`]
    /// rebuilds an identical synthesizer from it. The default is `None`,
    /// which records as "no spec": replays then fall back to the trait's
    /// default ALU-only wrong path.
    fn wrong_path_spec(&self) -> Option<WrongPathSpec> {
        None
    }
}

/// A finite trace backed by a vector of instructions; mainly used by tests.
///
/// # Example
///
/// ```
/// use elsq_isa::trace::VecTrace;
/// use elsq_isa::{InstBuilder, OpClass, TraceSource};
///
/// let insts = vec![
///     InstBuilder::alu(0, OpClass::IntAlu).build(),
///     InstBuilder::alu(4, OpClass::FpAlu).build(),
/// ];
/// let mut t = VecTrace::new(insts);
/// assert!(t.next_inst().is_some());
/// assert!(t.next_inst().is_some());
/// assert!(t.next_inst().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct VecTrace {
    insts: Vec<DynInst>,
    pos: usize,
    name: String,
}

impl VecTrace {
    /// Creates a trace that yields `insts` in order, once.
    pub fn new(insts: Vec<DynInst>) -> Self {
        Self {
            insts,
            pos: 0,
            name: "vec-trace".to_owned(),
        }
    }

    /// Creates a named trace (the name shows up in experiment reports).
    pub fn with_name(insts: Vec<DynInst>, name: impl Into<String>) -> Self {
        Self {
            insts,
            pos: 0,
            name: name.into(),
        }
    }

    /// Number of instructions remaining.
    pub fn remaining(&self) -> usize {
        self.insts.len() - self.pos
    }

    /// Resets the trace to its beginning.
    pub fn reset(&mut self) {
        self.pos = 0;
    }
}

impl TraceSource for VecTrace {
    fn next_inst(&mut self) -> Option<DynInst> {
        let inst = self.insts.get(self.pos).copied();
        if inst.is_some() {
            self.pos += 1;
        }
        inst
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// A trace source that repeats an inner finite sequence forever.
///
/// Useful for turning a hand-written kernel (e.g. in integration tests) into
/// an infinite stream the simulator can run for an arbitrary number of
/// committed instructions.
#[derive(Debug, Clone)]
pub struct LoopTrace {
    insts: Vec<DynInst>,
    pos: usize,
    iteration: u64,
    name: String,
}

impl LoopTrace {
    /// Creates a looping trace over `insts`.
    ///
    /// # Panics
    ///
    /// Panics if `insts` is empty.
    pub fn new(insts: Vec<DynInst>) -> Self {
        assert!(
            !insts.is_empty(),
            "LoopTrace requires at least one instruction"
        );
        Self {
            insts,
            pos: 0,
            iteration: 0,
            name: "loop-trace".to_owned(),
        }
    }

    /// Number of completed iterations over the inner sequence.
    pub fn iterations(&self) -> u64 {
        self.iteration
    }

    /// Sets the report name.
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }
}

impl TraceSource for LoopTrace {
    fn next_inst(&mut self) -> Option<DynInst> {
        let inst = self.insts[self.pos];
        self.pos += 1;
        if self.pos == self.insts.len() {
            self.pos = 0;
            self.iteration += 1;
        }
        Some(inst)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::OpClass;

    fn mk(n: usize) -> Vec<DynInst> {
        (0..n)
            .map(|i| InstBuilder::alu(i as u64 * 4, OpClass::IntAlu).build())
            .collect()
    }

    #[test]
    fn vec_trace_yields_in_order_then_none() {
        let mut t = VecTrace::new(mk(3));
        assert_eq!(t.remaining(), 3);
        assert_eq!(t.next_inst().unwrap().pc, 0);
        assert_eq!(t.next_inst().unwrap().pc, 4);
        assert_eq!(t.next_inst().unwrap().pc, 8);
        assert!(t.next_inst().is_none());
        assert_eq!(t.remaining(), 0);
        t.reset();
        assert_eq!(t.remaining(), 3);
    }

    #[test]
    fn loop_trace_wraps_and_counts_iterations() {
        let mut t = LoopTrace::new(mk(2)).named("kernel");
        assert_eq!(t.name(), "kernel");
        for _ in 0..5 {
            assert!(t.next_inst().is_some());
        }
        assert_eq!(t.iterations(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one instruction")]
    fn empty_loop_trace_panics() {
        let _ = LoopTrace::new(vec![]);
    }

    #[test]
    fn default_wrong_path_inst_is_wrong_path_alu() {
        let mut t = VecTrace::new(mk(1));
        let wp = t.wrong_path_inst(0x999);
        assert!(wp.wrong_path);
        assert_eq!(wp.pc, 0x999);
        assert!(!wp.is_mem());
    }
}
