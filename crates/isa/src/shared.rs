//! Shared read-only instruction streams: one captured correct path fanned
//! out to many pipeline instances.
//!
//! A config-axis sweep runs the *same* workload suite under N processor
//! configurations, and until now every point regenerated (or re-decoded)
//! its instruction stream from scratch. A [`SharedStream`] captures the
//! correct-path stream of any [`TraceSource`] once; each pipeline instance
//! then reads through its own [`SharedCursor`], which is itself a
//! `TraceSource`, so the processor models need no changes.
//!
//! # Why this is exact
//!
//! Byte-identical fan-out rests on two properties the rest of the codebase
//! already depends on:
//!
//! * **The correct path is position-only.** A `TraceSource`'s `next_inst`
//!   stream is a pure function of its construction parameters; capturing it
//!   eagerly instead of lazily cannot change it.
//! * **The wrong path is spec-pure and independent.** Wrong-path demand
//!   depends on each configuration's simulated timing (a wider window
//!   fetches deeper past a mispredicted branch), so it *cannot* be shared.
//!   But every generator synthesizes its wrong path from a
//!   [`WrongPathSpec`]-seeded [`WrongPathSynth`] decorrelated from the
//!   correct-path randomness — the same purity `.etrc` replay relies on —
//!   so each cursor rebuilds a private synthesizer from the captured spec
//!   and produces exactly the stream the original source would have.
//!
//! A processor run consumes one `next_inst` per committed instruction, so
//! capturing `max_commits` instructions suffices for any configuration
//! simulated to `max_commits` commits.

use std::sync::Arc;

use crate::inst::DynInst;
use crate::trace::{default_wrong_path_inst, TraceSource};
use crate::wrongpath::{WrongPathSpec, WrongPathSynth};

/// An immutable captured instruction stream, shareable across threads.
///
/// Construction eagerly drains the source's correct path (bounded by
/// `max_insts`); the memory cost is `max_insts * size_of::<DynInst>()` per
/// distinct workload, paid once per batch group instead of once per point.
#[derive(Debug, Clone)]
pub struct SharedStream {
    name: String,
    insts: Vec<DynInst>,
    wrong_path: Option<WrongPathSpec>,
}

impl SharedStream {
    /// Captures up to `max_insts` correct-path instructions from `source`,
    /// together with its name and wrong-path spec.
    ///
    /// A finite source may end earlier; cursors then report the same early
    /// exhaustion the source would have. A source holding *more* than
    /// `max_insts` instructions is truncated, so callers must size the
    /// capture to the maximum number of `next_inst` calls any consumer will
    /// make (one per committed instruction for the processor models).
    pub fn capture(source: &mut dyn TraceSource, max_insts: u64) -> Self {
        let mut insts = Vec::with_capacity(usize::try_from(max_insts).unwrap_or(0));
        for _ in 0..max_insts {
            match source.next_inst() {
                Some(inst) => insts.push(inst),
                None => break,
            }
        }
        Self {
            name: source.name().to_owned(),
            insts,
            wrong_path: source.wrong_path_spec(),
        }
    }

    /// The captured source's report name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of captured correct-path instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the capture holds no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The captured wrong-path spec, if the source had one.
    pub fn wrong_path_spec(&self) -> Option<WrongPathSpec> {
        self.wrong_path
    }

    /// A fresh cursor over `stream`, positioned at the beginning, with its
    /// own wrong-path synthesizer.
    pub fn cursor(self: &Arc<Self>) -> SharedCursor {
        SharedCursor {
            synth: self.wrong_path.map(WrongPathSynth::from_spec),
            stream: Arc::clone(self),
            pos: 0,
        }
    }
}

/// One pipeline instance's independent read position over a
/// [`SharedStream`].
///
/// Each cursor owns a private [`WrongPathSynth`] rebuilt from the captured
/// spec (when the source had one), because wrong-path demand differs per
/// configuration and the synthesizer is stateful. Sources without a spec
/// fall back to [`default_wrong_path_inst`], exactly as the
/// [`TraceSource`] default does.
#[derive(Debug, Clone)]
pub struct SharedCursor {
    stream: Arc<SharedStream>,
    pos: usize,
    synth: Option<WrongPathSynth>,
}

impl TraceSource for SharedCursor {
    fn next_inst(&mut self) -> Option<DynInst> {
        let inst = self.stream.insts.get(self.pos).copied();
        if inst.is_some() {
            self.pos += 1;
        }
        inst
    }

    fn skip_insts(&mut self, n: u64) -> u64 {
        // The capture is random-access: a skip is a bounded position jump.
        let n = usize::try_from(n).unwrap_or(usize::MAX);
        let skipped = n.min(self.stream.insts.len() - self.pos);
        self.pos += skipped;
        skipped as u64
    }

    fn wrong_path_inst(&mut self, pc: u64) -> DynInst {
        match &mut self.synth {
            Some(synth) => synth.inst(pc),
            None => default_wrong_path_inst(pc),
        }
    }

    fn name(&self) -> &str {
        self.stream.name()
    }

    fn wrong_path_spec(&self) -> Option<WrongPathSpec> {
        self.stream.wrong_path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::InstBuilder;
    use crate::op::OpClass;
    use crate::trace::VecTrace;

    fn mk(n: usize) -> Vec<DynInst> {
        (0..n)
            .map(|i| InstBuilder::alu(i as u64 * 4, OpClass::IntAlu).build())
            .collect()
    }

    #[test]
    fn capture_preserves_stream_name_and_spec() {
        let mut src = VecTrace::with_name(mk(5), "w0");
        let stream = Arc::new(SharedStream::capture(&mut src, 10));
        assert_eq!(stream.name(), "w0");
        assert_eq!(stream.len(), 5);
        assert!(stream.wrong_path_spec().is_none());
    }

    #[test]
    fn capture_truncates_at_max_insts() {
        let mut src = VecTrace::new(mk(10));
        let stream = SharedStream::capture(&mut src, 3);
        assert_eq!(stream.len(), 3);
        assert_eq!(src.remaining(), 7);
    }

    #[test]
    fn cursors_are_independent_and_replay_the_capture() {
        let insts = mk(4);
        let mut src = VecTrace::new(insts.clone());
        let stream = Arc::new(SharedStream::capture(&mut src, 4));
        let mut a = stream.cursor();
        let mut b = stream.cursor();
        assert_eq!(a.next_inst().unwrap(), insts[0]);
        assert_eq!(a.next_inst().unwrap(), insts[1]);
        // b's position is untouched by a's reads.
        assert_eq!(b.next_inst().unwrap(), insts[0]);
        assert_eq!(a.next_inst().unwrap(), insts[2]);
        assert_eq!(a.next_inst().unwrap(), insts[3]);
        assert!(a.next_inst().is_none());
        assert_eq!(b.next_inst().unwrap(), insts[1]);
    }

    #[test]
    fn skip_jumps_the_cursor_and_clamps_at_the_end() {
        let insts = mk(6);
        let mut src = VecTrace::new(insts.clone());
        let stream = Arc::new(SharedStream::capture(&mut src, 6));
        let mut c = stream.cursor();
        assert_eq!(c.skip_insts(4), 4);
        assert_eq!(c.next_inst().unwrap(), insts[4]);
        assert_eq!(c.skip_insts(10), 1, "only one instruction was left");
        assert!(c.next_inst().is_none());
    }

    #[test]
    fn specless_cursor_uses_the_default_wrong_path() {
        let mut src = VecTrace::new(mk(1));
        let stream = Arc::new(SharedStream::capture(&mut src, 1));
        let mut cursor = stream.cursor();
        assert_eq!(cursor.wrong_path_inst(0x40), default_wrong_path_inst(0x40));
    }

    #[test]
    fn spec_cursors_rebuild_identical_private_synthesizers() {
        struct SpecSource(VecTrace, WrongPathSynth);
        impl TraceSource for SpecSource {
            fn next_inst(&mut self) -> Option<DynInst> {
                self.0.next_inst()
            }
            fn wrong_path_inst(&mut self, pc: u64) -> DynInst {
                self.1.inst(pc)
            }
            fn name(&self) -> &str {
                "spec-source"
            }
            fn wrong_path_spec(&self) -> Option<WrongPathSpec> {
                Some(self.1.spec())
            }
        }
        let spec = WrongPathSpec {
            seed: 17,
            region_base: 0x8000,
            region_size: 4096,
            load_rate: 0.25,
        };
        let mut src = SpecSource(VecTrace::new(mk(2)), WrongPathSynth::from_spec(spec));
        let stream = Arc::new(SharedStream::capture(&mut src, 2));
        assert_eq!(stream.wrong_path_spec(), Some(spec));
        // Two cursors each replay the same wrong-path stream the original
        // source would have produced, regardless of interleaving.
        let mut a = stream.cursor();
        let mut b = stream.cursor();
        let mut reference = WrongPathSynth::from_spec(spec);
        for i in 0..100 {
            let pc = 0x4000_0000 + i * 4;
            let want = reference.inst(pc);
            assert_eq!(a.wrong_path_inst(pc), want);
            assert_eq!(b.wrong_path_inst(pc), want);
        }
    }
}
