//! Wrong-path instruction synthesis.
//!
//! After a mispredicted branch the front end fetches *wrong-path*
//! instructions until the branch resolves. Those instructions never commit
//! but they occupy LSQ entries and access caches, so their statistical mix
//! matters for the paper's Table 2. Every workload generator synthesizes
//! its wrong-path stream with a [`WrongPathSynth`] seeded independently of
//! the correct-path randomness, which makes the stream a pure function of a
//! small [`WrongPathSpec`].
//!
//! That purity is what makes on-disk traces replayable: the `.etrc` format
//! (see [`crate::etrc`]) stores the spec in its header instead of recording
//! wrong-path instructions, and a replaying [`crate::etrc::FileTrace`]
//! reconstructs a synthesizer that produces the exact same stream the
//! generator would have — wrong-path demand depends on simulated timing, so
//! it cannot be captured as a flat record sequence.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::inst::{DynInst, InstBuilder};
use crate::op::OpClass;
use crate::reg::ArchReg;

/// Constant mixed into wrong-path RNG seeds so wrong-path streams are
/// decorrelated from correct-path randomness ("WRONG_PT" in ASCII).
const WRONG_PATH_SEED_MIX: u64 = 0x5752_4f4e_475f_5054;

/// The complete parameterization of a [`WrongPathSynth`].
///
/// Two synthesizers constructed from equal specs produce identical
/// instruction streams, so recording a spec is equivalent to recording the
/// stream. The spec is stored verbatim in `.etrc` trace headers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WrongPathSpec {
    /// Seed of the wrong-path RNG (before the internal decorrelation mix).
    pub seed: u64,
    /// First byte of the region wrong-path loads probe.
    pub region_base: u64,
    /// Size in bytes of the probed region (clamped to at least 64).
    pub region_size: u64,
    /// Probability that a wrong-path instruction is a load.
    pub load_rate: f64,
}

/// Synthesizes wrong-path instructions fetched after a mispredicted branch.
///
/// Wrong-path code looks statistically like nearby correct-path code: mostly
/// ALU operations with some loads into the same regions, so it exercises the
/// LSQ and the caches until the branch resolves and the window is squashed.
#[derive(Debug, Clone)]
pub struct WrongPathSynth {
    rng: SmallRng,
    spec: WrongPathSpec,
}

impl WrongPathSynth {
    /// Creates a wrong-path synthesizer probing `region_size` bytes starting
    /// at `region_base` for its loads.
    pub fn new(seed: u64, region_base: u64, region_size: u64, load_rate: f64) -> Self {
        Self::from_spec(WrongPathSpec {
            seed,
            region_base,
            region_size,
            load_rate,
        })
    }

    /// Creates a synthesizer from its spec. Equal specs yield identical
    /// instruction streams.
    pub fn from_spec(spec: WrongPathSpec) -> Self {
        Self {
            rng: SmallRng::seed_from_u64(spec.seed ^ WRONG_PATH_SEED_MIX),
            spec: WrongPathSpec {
                region_size: spec.region_size.max(64),
                ..spec
            },
        }
    }

    /// The spec this synthesizer was built from (with the region size
    /// clamp applied).
    pub fn spec(&self) -> WrongPathSpec {
        self.spec
    }

    /// Produces one wrong-path instruction at `pc`.
    pub fn inst(&mut self, pc: u64) -> DynInst {
        if self.rng.gen_bool(self.spec.load_rate) {
            let offset = self.rng.gen_range(0..self.spec.region_size / 8) * 8;
            InstBuilder::load(pc, self.spec.region_base + offset, 8)
                .dst(ArchReg::int(9))
                .src(ArchReg::int(8))
                .wrong_path(true)
                .build()
        } else {
            InstBuilder::alu(pc, OpClass::IntAlu)
                .dst(ArchReg::int(9))
                .src(ArchReg::int(9))
                .wrong_path(true)
                .build()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_specs_produce_identical_streams() {
        let spec = WrongPathSpec {
            seed: 42,
            region_base: 0x8000,
            region_size: 4096,
            load_rate: 0.25,
        };
        let mut a = WrongPathSynth::from_spec(spec);
        let mut b = WrongPathSynth::from_spec(spec);
        for i in 0..500 {
            assert_eq!(a.inst(i * 4), b.inst(i * 4));
        }
    }

    #[test]
    fn new_matches_from_spec() {
        let mut a = WrongPathSynth::new(7, 0x1000, 1 << 20, 0.25);
        let mut b = WrongPathSynth::from_spec(WrongPathSpec {
            seed: 7,
            region_base: 0x1000,
            region_size: 1 << 20,
            load_rate: 0.25,
        });
        for i in 0..100 {
            assert_eq!(a.inst(i * 4), b.inst(i * 4));
        }
    }

    #[test]
    fn wrong_path_instructions_are_marked_and_valid() {
        let mut wp = WrongPathSynth::new(3, 0x8000, 4096, 0.5);
        let mut saw_load = false;
        for i in 0..200 {
            let inst = wp.inst(0x100 + i * 4);
            assert!(inst.wrong_path);
            assert!(inst.validate().is_ok());
            if inst.is_load() {
                saw_load = true;
                let a = inst.mem_access().addr;
                assert!(a >= 0x8000 && a < 0x8000 + 4096);
            }
        }
        assert!(saw_load);
    }

    #[test]
    fn tiny_region_is_clamped() {
        let mut wp = WrongPathSynth::new(1, 0x100, 8, 1.0);
        let inst = wp.inst(0);
        let addr = inst.mem_access().addr;
        assert!(addr >= 0x100 && addr < 0x100 + 64);
        assert_eq!(wp.spec().region_size, 64);
    }

    #[test]
    fn zero_region_is_clamped_and_never_divides_by_zero() {
        // region_size 0 would make the load-offset divisor zero without the
        // clamp; forcing every instruction to be a load exercises it.
        let mut wp = WrongPathSynth::from_spec(WrongPathSpec {
            seed: 5,
            region_base: 0x2000,
            region_size: 0,
            load_rate: 1.0,
        });
        assert_eq!(wp.spec().region_size, 64);
        for i in 0..100 {
            let inst = wp.inst(i * 4);
            assert!(inst.is_load());
            assert!(inst.validate().is_ok());
            let addr = inst.mem_access().addr;
            assert!(addr >= 0x2000 && addr < 0x2000 + 64);
        }
    }

    #[test]
    fn zero_load_rate_produces_only_alu_instructions() {
        // With no loads there is no memory payload anywhere in the stream;
        // mem_access() must be unreachable by construction.
        let mut wp = WrongPathSynth::new(9, 0x100, 0, 0.0);
        for i in 0..200 {
            let inst = wp.inst(i * 4);
            assert!(inst.wrong_path);
            assert!(!inst.is_mem());
            assert!(inst.mem.is_none());
            assert!(inst.validate().is_ok());
        }
    }
}
