//! Operation kinds and execution latencies.
//!
//! The timing model only needs to know the *class* of each operation (which
//! functional unit / issue queue it uses) and its execution latency. The
//! latencies follow the classic Alpha 21264 / MIPS R10000 style pipelines used
//! by the paper's simulation infrastructure.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::reg::RegClass;

/// Coarse operation class.
///
/// Determines the issue queue (integer vs floating point), whether the
/// instruction allocates a Load Queue or Store Queue entry and whether it is
/// a control-flow instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpClass {
    /// Simple integer ALU operation (add, logic, shift, compare).
    IntAlu,
    /// Integer multiply / divide (long latency, integer queue).
    IntMul,
    /// Floating-point add/sub/convert.
    FpAlu,
    /// Floating-point multiply.
    FpMul,
    /// Floating-point divide / square root (long latency).
    FpDiv,
    /// Memory load (allocates a Load Queue entry).
    Load,
    /// Memory store (allocates a Store Queue entry).
    Store,
    /// Conditional or unconditional branch / jump.
    Branch,
    /// No-operation (consumes fetch/decode bandwidth only).
    Nop,
}

impl OpClass {
    /// All operation classes, useful for exhaustive tests and mix tables.
    pub const ALL: [OpClass; 9] = [
        OpClass::IntAlu,
        OpClass::IntMul,
        OpClass::FpAlu,
        OpClass::FpMul,
        OpClass::FpDiv,
        OpClass::Load,
        OpClass::Store,
        OpClass::Branch,
        OpClass::Nop,
    ];

    /// Default execution latency in cycles (not counting memory access time
    /// for loads/stores, which is determined by the cache hierarchy).
    pub fn default_latency(&self) -> u32 {
        match self {
            OpClass::IntAlu => 1,
            OpClass::IntMul => 7,
            OpClass::FpAlu => 4,
            OpClass::FpMul => 4,
            OpClass::FpDiv => 16,
            // Address generation latency; the cache access is added on top.
            OpClass::Load => 1,
            OpClass::Store => 1,
            OpClass::Branch => 1,
            OpClass::Nop => 1,
        }
    }

    /// Whether the operation is a memory reference.
    pub fn is_mem(&self) -> bool {
        matches!(self, OpClass::Load | OpClass::Store)
    }

    /// Whether the operation executes in the floating-point cluster.
    pub fn is_fp(&self) -> bool {
        matches!(self, OpClass::FpAlu | OpClass::FpMul | OpClass::FpDiv)
    }

    /// The register class of the issue queue this operation dispatches to.
    ///
    /// Memory and control instructions use the integer queue (their address /
    /// condition operands are integer registers), matching the paper's
    /// CP/ME queue split.
    pub fn queue_class(&self) -> RegClass {
        if self.is_fp() {
            RegClass::Fp
        } else {
            RegClass::Int
        }
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpClass::IntAlu => "int_alu",
            OpClass::IntMul => "int_mul",
            OpClass::FpAlu => "fp_alu",
            OpClass::FpMul => "fp_mul",
            OpClass::FpDiv => "fp_div",
            OpClass::Load => "load",
            OpClass::Store => "store",
            OpClass::Branch => "branch",
            OpClass::Nop => "nop",
        };
        f.write_str(s)
    }
}

/// A concrete operation: a class plus an execution latency.
///
/// Most call sites construct this through [`Op::of`] which uses the default
/// latency for the class; workload generators may override the latency to
/// model, for example, variable-latency divides.
///
/// # Example
///
/// ```
/// use elsq_isa::{Op, OpClass};
///
/// let op = Op::of(OpClass::FpMul);
/// assert_eq!(op.latency(), 4);
/// let slow_div = Op::with_latency(OpClass::FpDiv, 30);
/// assert_eq!(slow_div.latency(), 30);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Op {
    class: OpClass,
    latency: u32,
}

impl Op {
    /// Creates an operation with the default latency for its class.
    pub fn of(class: OpClass) -> Self {
        Self {
            class,
            latency: class.default_latency(),
        }
    }

    /// Creates an operation with an explicit execution latency.
    ///
    /// # Panics
    ///
    /// Panics if `latency` is zero; every operation takes at least one cycle.
    pub fn with_latency(class: OpClass, latency: u32) -> Self {
        assert!(latency > 0, "operation latency must be at least 1 cycle");
        Self { class, latency }
    }

    /// The operation class.
    pub fn class(&self) -> OpClass {
        self.class
    }

    /// The execution latency in cycles.
    pub fn latency(&self) -> u32 {
        self.latency
    }

    /// Whether this is a load.
    pub fn is_load(&self) -> bool {
        self.class == OpClass::Load
    }

    /// Whether this is a store.
    pub fn is_store(&self) -> bool {
        self.class == OpClass::Store
    }

    /// Whether this is a memory operation (load or store).
    pub fn is_mem(&self) -> bool {
        self.class.is_mem()
    }

    /// Whether this is a branch.
    pub fn is_branch(&self) -> bool {
        self.class == OpClass::Branch
    }
}

impl Default for Op {
    fn default() -> Self {
        Op::of(OpClass::Nop)
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.class)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_latencies_are_positive() {
        for class in OpClass::ALL {
            assert!(class.default_latency() >= 1, "{class} latency must be >= 1");
        }
    }

    #[test]
    fn queue_classes() {
        assert_eq!(OpClass::Load.queue_class(), RegClass::Int);
        assert_eq!(OpClass::Store.queue_class(), RegClass::Int);
        assert_eq!(OpClass::Branch.queue_class(), RegClass::Int);
        assert_eq!(OpClass::FpMul.queue_class(), RegClass::Fp);
        assert_eq!(OpClass::FpDiv.queue_class(), RegClass::Fp);
        assert_eq!(OpClass::IntAlu.queue_class(), RegClass::Int);
    }

    #[test]
    fn mem_predicates() {
        assert!(OpClass::Load.is_mem());
        assert!(OpClass::Store.is_mem());
        assert!(!OpClass::Branch.is_mem());
        assert!(Op::of(OpClass::Load).is_load());
        assert!(!Op::of(OpClass::Load).is_store());
        assert!(Op::of(OpClass::Store).is_store());
        assert!(Op::of(OpClass::Branch).is_branch());
    }

    #[test]
    fn with_latency_overrides_default() {
        let op = Op::with_latency(OpClass::IntMul, 12);
        assert_eq!(op.latency(), 12);
        assert_eq!(op.class(), OpClass::IntMul);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_latency_panics() {
        let _ = Op::with_latency(OpClass::IntAlu, 0);
    }

    #[test]
    fn default_op_is_nop() {
        assert_eq!(Op::default().class(), OpClass::Nop);
    }

    #[test]
    fn display_is_class_name() {
        assert_eq!(Op::of(OpClass::Load).to_string(), "load");
        assert_eq!(OpClass::FpDiv.to_string(), "fp_div");
    }
}
