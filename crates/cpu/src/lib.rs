//! Processor timing models for the ELSQ reproduction.
//!
//! Two microarchitectures from the paper are modeled by a single
//! cycle-accounting pipeline ([`pipeline::Processor`]):
//!
//! * the **conventional out-of-order processor** (MIPS R10000 style, 64-entry
//!   ROB) obtained by disabling the Memory Processor — the paper's OoO-64
//!   baseline, optionally with SVW load re-execution;
//! * the **FMC (Flexible MultiCore)** large-window processor: a Cache
//!   Processor identical to the OoO core plus up to 16 in-order Memory
//!   Engines that receive miss-dependent instructions via Virtual-ROB style
//!   migration, giving an effective window of ~2000 instructions. The FMC can
//!   run with the idealized central LSQ or with the Epoch-based LSQ in any of
//!   its configurations.
//!
//! The pipeline is trace-driven for data (workload generators provide
//! addresses and branch outcomes) and execution-driven for timing: fetch,
//! rename/dispatch, issue, memory access, migration, commit and recovery are
//! all modeled with explicit structural resources (ROB and LSQ occupancy,
//! issue and cache ports, commit bandwidth, epoch/Memory-Engine capacity,
//! CP↔MP network latencies).
//!
//! # Example
//!
//! ```
//! use elsq_cpu::config::{CpuConfig, LsqKind};
//! use elsq_cpu::pipeline::Processor;
//! use elsq_workload::streaming::StreamingFp;
//!
//! // Conventional OoO-64 baseline on a small streaming workload.
//! let config = CpuConfig::ooo64();
//! let mut cpu = Processor::new(config);
//! let mut workload = StreamingFp::swim_like(1);
//! let result = cpu.run(&mut workload, 20_000);
//! assert!(result.ipc() > 0.05 && result.ipc() < 4.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod lsq_driver;
pub mod pipeline;
pub mod result;

pub use config::{CpuConfig, FmcConfig, LsqKind, SvwParams};
pub use pipeline::Processor;
pub use result::{Histogram, SimResult};
