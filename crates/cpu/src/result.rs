//! Simulation results: whole-run counters, per-structure access counts and
//! the decode→address-calculation histogram of Figure 1.

use serde::{Deserialize, Serialize};

use elsq_stats::counters::{LsqAccessCounters, SimCounters};
use elsq_stats::sampling::SamplingStats;

/// A fixed-bin histogram (30-cycle bins, as in Figure 1).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    bin_width: u64,
    bins: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `num_bins` bins of `bin_width` cycles; values
    /// beyond the last bin are clamped into it.
    pub fn new(bin_width: u64, num_bins: usize) -> Self {
        assert!(bin_width > 0 && num_bins > 0, "histogram must have bins");
        Self {
            bin_width,
            bins: vec![0; num_bins],
            total: 0,
        }
    }

    /// The Figure 1 configuration: 30-cycle bins up to 1350 cycles.
    pub fn figure1() -> Self {
        Self::new(30, 46)
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let idx = ((value / self.bin_width) as usize).min(self.bins.len() - 1);
        self.bins[idx] += 1;
        self.total += 1;
    }

    /// Number of samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Bin width in cycles.
    pub fn bin_width(&self) -> u64 {
        self.bin_width
    }

    /// The raw bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// The smallest value `v` such that at least `fraction` of the samples
    /// fall at or below `v` (computed at bin granularity) — used for the 95 %
    /// and 99 % coverage markers of Figure 1.
    pub fn percentile(&self, fraction: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let target = (self.total as f64 * fraction).ceil() as u64;
        let mut cumulative = 0;
        for (i, &count) in self.bins.iter().enumerate() {
            cumulative += count;
            if cumulative >= target {
                return (i as u64 + 1) * self.bin_width;
            }
        }
        self.bins.len() as u64 * self.bin_width
    }

    /// Fraction of samples in the first bin (address calculated within one
    /// bin width of decode).
    pub fn first_bin_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.bins[0] as f64 / self.total as f64
        }
    }

    /// Merges another histogram with the same geometry into this one.
    ///
    /// # Panics
    ///
    /// Panics if the geometries differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bin_width, other.bin_width);
        assert_eq!(self.bins.len(), other.bins.len());
        for (a, b) in self.bins.iter_mut().zip(other.bins.iter()) {
            *a += b;
        }
        self.total += other.total;
    }
}

/// The complete result of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Whole-run counters (cycles, commits, squashes, MP activity).
    pub sim: SimCounters,
    /// LSQ structure access counters (Table 2).
    pub lsq: LsqAccessCounters,
    /// Decode→address-calculation distances for committed loads (Figure 1).
    pub load_addr_hist: Histogram,
    /// Decode→address-calculation distances for committed stores (Figure 1).
    pub store_addr_hist: Histogram,
    /// Name of the workload that produced this result.
    pub workload: String,
    /// Per-window sampling statistics, present only for sampled runs
    /// (`Processor::run_sampled`).
    pub sampling: Option<SamplingStats>,
}

// Hand-written so an absent `sampling` is *omitted* rather than null:
// canonical hashes of full-run results (pinned by the golden-report tests)
// keep their value, and result-store files written before sampling existed
// keep decoding.
impl Serialize for SimResult {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            ("sim".to_owned(), self.sim.to_value()),
            ("lsq".to_owned(), self.lsq.to_value()),
            ("load_addr_hist".to_owned(), self.load_addr_hist.to_value()),
            (
                "store_addr_hist".to_owned(),
                self.store_addr_hist.to_value(),
            ),
            ("workload".to_owned(), self.workload.to_value()),
        ];
        if let Some(sampling) = &self.sampling {
            fields.push(("sampling".to_owned(), sampling.to_value()));
        }
        serde::Value::Map(fields)
    }
}

impl Deserialize for SimResult {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let sampling = match value {
            serde::Value::Map(_) => match value.get("sampling") {
                Some(v) => Option::<SamplingStats>::from_value(v)?,
                None => None,
            },
            other => return Err(serde::Error::expected("map", other)),
        };
        Ok(Self {
            sim: SimCounters::from_value(serde::map_field(value, "sim")?)?,
            lsq: LsqAccessCounters::from_value(serde::map_field(value, "lsq")?)?,
            load_addr_hist: Histogram::from_value(serde::map_field(value, "load_addr_hist")?)?,
            store_addr_hist: Histogram::from_value(serde::map_field(value, "store_addr_hist")?)?,
            workload: String::from_value(serde::map_field(value, "workload")?)?,
            sampling,
        })
    }
}

impl SimResult {
    /// Creates an empty result for `workload`.
    pub fn new(workload: impl Into<String>) -> Self {
        Self {
            sim: SimCounters::default(),
            lsq: LsqAccessCounters::default(),
            load_addr_hist: Histogram::figure1(),
            store_addr_hist: Histogram::figure1(),
            workload: workload.into(),
            sampling: None,
        }
    }

    /// Committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        self.sim.ipc()
    }

    /// Access counters rescaled to the paper's per-100M-instructions unit.
    pub fn lsq_per_100m(&self) -> LsqAccessCounters {
        self.lsq.scaled_per_100m(self.sim.committed.max(1))
    }

    /// Arithmetic-mean IPC over a set of results (the paper's averaging
    /// method).
    pub fn mean_ipc(results: &[SimResult]) -> f64 {
        if results.is_empty() {
            return 0.0;
        }
        results.iter().map(|r| r.ipc()).sum::<f64>() / results.len() as f64
    }

    /// Arithmetic mean of per-100M access counters over a set of results.
    pub fn mean_lsq_per_100m(results: &[SimResult]) -> LsqAccessCounters {
        let mut acc = LsqAccessCounters::default();
        if results.is_empty() {
            return acc;
        }
        for r in results {
            acc += r.lsq_per_100m();
        }
        let n = results.len() as u64;
        // Integer division is fine at these magnitudes (millions).
        LsqAccessCounters {
            hl_lq_searches: acc.hl_lq_searches / n,
            hl_sq_searches: acc.hl_sq_searches / n,
            ll_lq_searches: acc.ll_lq_searches / n,
            ll_sq_searches: acc.ll_sq_searches / n,
            ert_lookups: acc.ert_lookups / n,
            ssbf_lookups: acc.ssbf_lookups / n,
            sqm_lookups: acc.sqm_lookups / n,
            roundtrips: acc.roundtrips / n,
            cache_accesses: acc.cache_accesses / n,
            ert_false_positives: acc.ert_false_positives / n,
            ert_true_positives: acc.ert_true_positives / n,
            local_forwards: acc.local_forwards / n,
            global_forwards: acc.global_forwards / n,
            order_violations: acc.order_violations / n,
            load_reexecutions: acc.load_reexecutions / n,
            lines_locked: acc.lines_locked / n,
            lock_conflict_squashes: acc.lock_conflict_squashes / n,
            lock_conflict_stalls: acc.lock_conflict_stalls / n,
            restricted_stalls: acc.restricted_stalls / n,
        }
    }
}

// The parallel suite driver moves results across worker threads; keep the
// result types `Send + Sync` by construction.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SimResult>();
    assert_send_sync::<Histogram>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_records_and_clamps() {
        let mut h = Histogram::new(30, 4);
        h.record(0);
        h.record(29);
        h.record(30);
        h.record(1000); // clamped into the last bin
        assert_eq!(h.bins(), &[2, 1, 0, 1]);
        assert_eq!(h.total(), 4);
        assert_eq!(h.bin_width(), 30);
        assert!((h.first_bin_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn percentiles() {
        let mut h = Histogram::new(10, 10);
        for v in [1, 2, 3, 4, 5, 6, 7, 8, 95] {
            h.record(v);
        }
        assert_eq!(h.percentile(0.5), 10);
        assert_eq!(h.percentile(0.95), 100);
        assert_eq!(Histogram::new(10, 10).percentile(0.99), 0);
    }

    #[test]
    fn merge_requires_matching_geometry() {
        let mut a = Histogram::figure1();
        let mut b = Histogram::figure1();
        a.record(10);
        b.record(500);
        a.merge(&b);
        assert_eq!(a.total(), 2);
    }

    #[test]
    fn mean_ipc_over_results() {
        let mut r1 = SimResult::new("a");
        r1.sim.cycles = 100;
        r1.sim.committed = 150;
        let mut r2 = SimResult::new("b");
        r2.sim.cycles = 100;
        r2.sim.committed = 50;
        assert!((SimResult::mean_ipc(&[r1, r2]) - 1.0).abs() < 1e-12);
        assert_eq!(SimResult::mean_ipc(&[]), 0.0);
    }

    #[test]
    fn serde_omits_an_absent_sampling_record() {
        let full = SimResult::new("full");
        let keys = |v: &serde::Value| -> Vec<String> {
            match v {
                serde::Value::Map(fields) => fields.iter().map(|(k, _)| k.clone()).collect(),
                _ => panic!("expected a map"),
            }
        };
        assert!(
            !keys(&full.to_value()).contains(&"sampling".to_owned()),
            "unsampled results must not carry a sampling key"
        );
        // A legacy value (no sampling key) decodes to sampling: None.
        let back = SimResult::from_value(&full.to_value()).unwrap();
        assert_eq!(back, full);

        let mut sampled = SimResult::new("sampled");
        sampled.sampling = Some(elsq_stats::sampling::SamplingStats {
            spec: elsq_stats::sampling::SamplingSpec::new(1_000, 100, 50).unwrap(),
            skipped: 850,
            warmed: 50,
            windows: vec![elsq_stats::sampling::WindowSample {
                committed: 100,
                cycles: 80,
            }],
        });
        assert!(keys(&sampled.to_value()).contains(&"sampling".to_owned()));
        let back = SimResult::from_value(&sampled.to_value()).unwrap();
        assert_eq!(back, sampled);
    }

    #[test]
    fn per_100m_scaling_uses_committed() {
        let mut r = SimResult::new("x");
        r.sim.committed = 1_000_000;
        r.lsq.hl_sq_searches = 270_000;
        assert_eq!(r.lsq_per_100m().hl_sq_searches, 27_000_000);
        let mean = SimResult::mean_lsq_per_100m(&[r.clone(), r]);
        assert_eq!(mean.hl_sq_searches, 27_000_000);
    }
}
