//! The cycle-accounting pipeline shared by the OoO-64 baseline and the FMC
//! large-window processor.
//!
//! The model processes the dynamic instruction stream in program order and
//! computes, for every instruction, the cycle at which each pipeline event
//! happens — fetch, dispatch, issue (address calculation for memory
//! operations), memory access, completion and commit — under explicit
//! structural constraints:
//!
//! * fetch, issue, commit and cache-port bandwidth (port schedules),
//! * CP reorder-buffer occupancy (an instruction cannot be fetched until the
//!   instruction `ROB_SIZE` positions earlier has left the CP),
//! * LSQ occupancy (HL-LSQ or central queue entries),
//! * Memory-Processor window and epoch/Memory-Engine capacity (FMC only),
//! * in-order, 2-wide issue inside each Memory Engine,
//! * CP↔MP network latencies for migration, remote cache access and
//!   remote LSQ searches,
//! * branch mispredictions with wrong-path fetch until the branch resolves,
//! * store-load ordering violations, line-locking conflicts and SVW
//!   re-executions.
//!
//! Data values are never computed: workload generators provide addresses and
//! branch outcomes, and register dependences only influence *timing* through
//! each architectural register's ready cycle.

use std::collections::VecDeque;

use elsq_core::queue::MemOpKind;
use elsq_core::svw::{LoadVulnerability, SvwReexecutor};
use elsq_isa::{DynInst, TraceSource};
use elsq_mem::hierarchy::MemoryHierarchy;
use elsq_mem::ports::PortSchedule;
use elsq_stats::sampling::{SamplingSpec, SamplingStats, WindowSample};

use crate::config::CpuConfig;
use crate::lsq_driver::{ExecSite, LsqDriver};
use crate::result::SimResult;

/// Number of architectural registers tracked (32 int + 32 fp).
const NUM_REGS: usize = 64;

/// How many recent store commits are remembered for SVW safe-SSN lookups.
const STORE_COMMIT_LOG: usize = 8192;

/// Fixed penalty charged when a load only partially overlaps the store it
/// would forward from (it must wait for the store to reach the cache).
const PARTIAL_OVERLAP_PENALTY: u64 = 30;

/// The processor model.
#[derive(Debug, Clone)]
pub struct Processor {
    config: CpuConfig,
}

/// Book-keeping for the epoch / Memory Engine currently being filled.
#[derive(Debug, Clone, Copy)]
struct OpenEpoch {
    bank: usize,
    inst_count: usize,
    /// Commit cycle of the youngest instruction placed in the epoch so far —
    /// the epoch can be retired after this cycle.
    release: u64,
}

struct RunState {
    hierarchy: MemoryHierarchy,
    lsq: LsqDriver,
    svw: Option<SvwReexecutor>,
    reg_ready: [u64; NUM_REGS],
    fetch_ports: PortSchedule,
    issue_ports: PortSchedule,
    commit_ports: PortSchedule,
    cache_ports: PortSchedule,
    me_issue: Vec<(u64, u32)>,
    rob_release: VecDeque<u64>,
    mp_release: VecDeque<u64>,
    lq_release: VecDeque<u64>,
    sq_release: VecDeque<u64>,
    store_commit_log: VecDeque<(u64, u64)>,
    fetch_blocked_until: u64,
    last_commit_cycle: u64,
    cp_leave_prev: u64,
    migration_blocked_until: u64,
    open_epoch: Option<OpenEpoch>,
    closed_epochs: VecDeque<(usize, u64)>,
    mp_busy_start: u64,
    mp_busy_until: u64,
    mp_busy_total: u64,
    seq: u64,
    result: SimResult,
}

/// Timing of one processed instruction, as needed by the fetch loop (the
/// branch-resolution cycle drives wrong-path fetch).
#[derive(Debug, Clone, Copy)]
struct InstTiming {
    complete: u64,
}

impl Processor {
    /// Creates a processor with the given configuration.
    pub fn new(config: CpuConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &CpuConfig {
        &self.config
    }

    /// Runs `workload` until `max_commits` correct-path instructions have
    /// committed (or the trace ends) and returns the collected statistics.
    pub fn run(&mut self, workload: &mut dyn TraceSource, max_commits: u64) -> SimResult {
        let mut st = self.init_state(workload.name());
        self.run_window(&mut st, workload, max_commits);
        self.finalize_run(st)
    }

    /// Runs `workload` for up to `total_insts` instructions under
    /// SMARTS-style systematic sampling: each period of `spec.period`
    /// instructions fast-forwards `spec.skip()` of them (architectural
    /// position only), functionally warms caches and store filters for
    /// `spec.warmup`, then simulates a detailed window of `spec.window`
    /// through the full cycle loop. Every completed window contributes one
    /// IPC observation to the result's [`SimResult::sampling`] record.
    ///
    /// Deterministic for a given workload/spec: identical invocations
    /// produce byte-identical results.
    pub fn run_sampled(
        &mut self,
        workload: &mut dyn TraceSource,
        total_insts: u64,
        spec: SamplingSpec,
    ) -> SimResult {
        let mut st = self.init_state(workload.name());
        let mut sampling = SamplingStats {
            spec,
            skipped: 0,
            warmed: 0,
            windows: Vec::new(),
        };
        let mut consumed = 0u64;
        while consumed < total_insts {
            let skip = spec.skip().min(total_insts - consumed);
            if skip > 0 {
                let skipped = workload.skip_insts(skip);
                sampling.skipped += skipped;
                consumed += skipped;
                if skipped < skip {
                    break;
                }
            }
            let warm = spec.warmup.min(total_insts - consumed);
            if warm > 0 {
                let warmed = self.warm(&mut st, workload, warm);
                sampling.warmed += warmed;
                consumed += warmed;
                if warmed < warm {
                    break;
                }
            }
            let window = spec.window.min(total_insts - consumed);
            if window == 0 {
                break;
            }
            let cycles_before = st.last_commit_cycle;
            let committed = self.run_window(&mut st, workload, window);
            consumed += committed;
            if committed > 0 {
                sampling.windows.push(WindowSample {
                    committed,
                    cycles: st.last_commit_cycle.saturating_sub(cycles_before),
                });
            }
            if committed < window {
                break;
            }
        }
        let mut result = self.finalize_run(st);
        result.sampling = Some(sampling);
        result
    }

    /// Functional warming: consumes up to `n` instructions, touching the
    /// cache hierarchy and training the SVW store filter so the next
    /// detailed window starts warm, without engaging the cycle loop.
    /// Returns how many instructions the trace actually yielded.
    fn warm(&mut self, st: &mut RunState, workload: &mut dyn TraceSource, n: u64) -> u64 {
        let mut warmed = 0;
        while warmed < n {
            let Some(inst) = workload.next_inst() else {
                break;
            };
            warmed += 1;
            let seq = st.seq;
            st.seq += 1;
            if let Some(mem) = inst.mem {
                st.hierarchy.access(mem.addr, inst.is_store());
                if inst.is_store() {
                    if let Some(svw) = st.svw.as_mut() {
                        svw.on_store_commit(seq, mem.addr);
                    }
                }
            }
        }
        warmed
    }

    /// Drives the cycle loop until `commits` further instructions commit
    /// (or the trace ends) and returns how many actually committed.
    fn run_window(
        &mut self,
        st: &mut RunState,
        workload: &mut dyn TraceSource,
        commits: u64,
    ) -> u64 {
        let start = st.result.sim.committed;
        let target = start.saturating_add(commits);
        while st.result.sim.committed < target {
            let Some(inst) = workload.next_inst() else {
                break;
            };
            let timing = self.process_inst(st, inst, false);
            // Mispredicted branch: fetch down the wrong path until the branch
            // resolves, then squash and redirect.
            if inst.is_mispredicted_branch() {
                self.run_wrong_path(st, workload, timing.complete);
            }
            // Periodically prune schedules so memory stays bounded.
            if st.seq % 4096 == 0 {
                let horizon = st.last_commit_cycle.saturating_sub(2);
                st.fetch_ports.retire_before(horizon.saturating_sub(10_000));
                st.issue_ports.retire_before(horizon.saturating_sub(10_000));
                st.commit_ports
                    .retire_before(horizon.saturating_sub(10_000));
                st.cache_ports.retire_before(horizon.saturating_sub(10_000));
            }
        }
        st.result.sim.committed - start
    }

    fn init_state(&self, workload_name: &str) -> RunState {
        let cfg = &self.config;
        let me_count = cfg.fmc.map(|f| f.num_engines).unwrap_or(0);
        let (lq_cap, sq_cap) = self.lsq_caps();
        RunState {
            hierarchy: MemoryHierarchy::new(cfg.hierarchy),
            lsq: LsqDriver::new(&cfg.lsq),
            svw: cfg
                .svw
                .map(|p| SvwReexecutor::new(p.ssbf_bits, p.check_stores)),
            reg_ready: [0; NUM_REGS],
            fetch_ports: PortSchedule::new(cfg.fetch_width),
            issue_ports: PortSchedule::new(cfg.issue_width),
            commit_ports: PortSchedule::new(cfg.commit_width),
            cache_ports: PortSchedule::new(cfg.cache_ports),
            me_issue: vec![(0, 0); me_count.max(1)],
            rob_release: VecDeque::with_capacity(cfg.rob_size + 1),
            mp_release: VecDeque::new(),
            lq_release: VecDeque::with_capacity(lq_cap.unwrap_or(0) + 1),
            sq_release: VecDeque::with_capacity(sq_cap.unwrap_or(0) + 1),
            store_commit_log: VecDeque::with_capacity(STORE_COMMIT_LOG),
            fetch_blocked_until: 0,
            last_commit_cycle: 0,
            cp_leave_prev: 0,
            migration_blocked_until: 0,
            open_epoch: None,
            closed_epochs: VecDeque::new(),
            mp_busy_start: 0,
            mp_busy_until: 0,
            mp_busy_total: 0,
            seq: 0,
            result: SimResult::new(workload_name),
        }
    }

    fn finalize_run(&self, mut st: RunState) -> SimResult {
        // Flush the Memory-Processor busy interval and finalize counters.
        if st.mp_busy_until > st.mp_busy_start {
            st.mp_busy_total += st.mp_busy_until - st.mp_busy_start;
        }
        st.result.sim.cycles = st.last_commit_cycle.max(1);
        let busy = st.mp_busy_total.min(st.result.sim.cycles);
        st.result.sim.ll_active_cycles = busy;
        st.result.sim.ll_idle_cycles = st.result.sim.cycles - busy;
        st.result.sim.epochs_allocated = st.lsq.epochs_allocated();
        let mut lsq_counters = st.lsq.counters();
        if let Some(svw) = &st.svw {
            lsq_counters.ssbf_lookups = svw.ssbf_lookups();
            lsq_counters.load_reexecutions = svw.stats().reexecutions;
        }
        lsq_counters.cache_accesses = st.hierarchy.total_accesses();
        st.result.lsq = lsq_counters;
        st.result
    }

    fn lsq_caps(&self) -> (Option<usize>, Option<usize>) {
        match &self.config.lsq {
            crate::config::LsqKind::Central(c) => (c.lq_entries, c.sq_entries),
            crate::config::LsqKind::Elsq(e) => (Some(e.hl_lq_entries), Some(e.hl_sq_entries)),
        }
    }

    /// Fetches and processes wrong-path instructions until `resolve`, then
    /// squashes them.
    fn run_wrong_path(&mut self, st: &mut RunState, workload: &mut dyn TraceSource, resolve: u64) {
        st.result.sim.branch_mispredicts += 1;
        let wp_start_seq = st.seq;
        let mut fetched = 0u64;
        // Bound the wrong-path burst by the machine width times the branch
        // resolution delay — the front end cannot fetch more than that.
        let max_wp = (self.config.fetch_width as u64) * 256;
        loop {
            if fetched >= max_wp {
                break;
            }
            // Reserve the next fetch slot; stop once it reaches resolution.
            let probe = st.fetch_blocked_until;
            let slot_if_fetched = st.fetch_ports.reserve(probe);
            if slot_if_fetched >= resolve {
                // The slot belongs to the redirected correct path; it stays
                // reserved, which models the fetch bubble on redirect.
                break;
            }
            let inst = workload.wrong_path_inst(0x4000_0000 + fetched * 4);
            self.process_wrong_path_inst(st, inst, slot_if_fetched, resolve);
            fetched += 1;
        }
        st.result.sim.wrong_path_fetched += fetched;
        st.result.sim.squashed += fetched;
        st.lsq.squash_from(wp_start_seq);
        st.fetch_blocked_until = st
            .fetch_blocked_until
            .max(resolve + self.config.redirect_penalty as u64);
    }

    /// Processes one wrong-path instruction fetched at `fetch`: it consumes
    /// LSQ entries, issue slots and cache bandwidth, but never commits or
    /// updates the register file, and its resources free at `resolve`.
    fn process_wrong_path_inst(
        &mut self,
        st: &mut RunState,
        inst: DynInst,
        fetch: u64,
        resolve: u64,
    ) {
        st.result.sim.fetched += 1;
        let seq = st.seq;
        st.seq += 1;
        let dispatch = fetch + self.config.frontend_depth as u64;
        st.rob_release.push_back(resolve);
        if st.rob_release.len() > self.config.rob_size {
            st.rob_release.pop_front();
        }
        if inst.is_mem() {
            let kind = if inst.is_load() {
                MemOpKind::Load
            } else {
                MemOpKind::Store
            };
            if st.lsq.has_room(kind) {
                st.lsq.allocate(kind, seq);
                if inst.is_load() {
                    let addr = inst.mem_access();
                    let ready = self.operand_ready(st, &inst).max(dispatch);
                    let issue = st.issue_ports.reserve(ready);
                    if issue < resolve {
                        let _ = st
                            .lsq
                            .issue_load(seq, addr, issue, ExecSite::CacheProcessor, None);
                        let port = st.cache_ports.reserve(issue);
                        st.hierarchy.access(addr.addr, false);
                        let _ = port;
                    }
                }
            }
        }
    }

    /// Ready cycle of the instruction's source operands.
    fn operand_ready(&self, st: &RunState, inst: &DynInst) -> u64 {
        inst.sources()
            .map(|r| {
                if r.is_zero() {
                    0
                } else {
                    st.reg_ready[r.flat_index()]
                }
            })
            .max()
            .unwrap_or(0)
    }

    /// Processes one correct-path instruction and returns its timing.
    fn process_inst(&mut self, st: &mut RunState, inst: DynInst, _nested: bool) -> InstTiming {
        let cfg = self.config;
        let seq = st.seq;
        st.seq += 1;
        st.result.sim.fetched += 1;

        // ------------------------------------------------------------------
        // Fetch: bandwidth, redirect bubbles, ROB and LSQ occupancy.
        // ------------------------------------------------------------------
        let mut earliest = st.fetch_blocked_until;
        if st.rob_release.len() >= cfg.rob_size {
            earliest = earliest.max(*st.rob_release.front().expect("rob_release non-empty"));
        }
        let kind = if inst.is_load() {
            Some(MemOpKind::Load)
        } else if inst.is_store() {
            Some(MemOpKind::Store)
        } else {
            None
        };
        let (lq_cap, sq_cap) = self.lsq_caps();
        if kind == Some(MemOpKind::Load) {
            if let Some(cap) = lq_cap {
                if st.lq_release.len() >= cap {
                    earliest = earliest.max(*st.lq_release.front().expect("lq_release non-empty"));
                }
            }
        }
        if kind == Some(MemOpKind::Store) {
            if let Some(cap) = sq_cap {
                if st.sq_release.len() >= cap {
                    earliest = earliest.max(*st.sq_release.front().expect("sq_release non-empty"));
                }
            }
        }
        let fetch = st.fetch_ports.reserve(earliest);
        let dispatch = fetch + cfg.frontend_depth as u64;
        let _ = fetch;

        let mut lsq_tracked = false;
        if let Some(kind) = kind {
            lsq_tracked = st.lsq.allocate(kind, seq);
        }

        // ------------------------------------------------------------------
        // Operand readiness and the migration decision.
        // ------------------------------------------------------------------
        let ready = self.operand_ready(st, &inst).max(dispatch);
        // For memory operations the *address* operand (first source) may be
        // ready long before the data operand; Figure 1, the migration
        // heuristics and restricted SAC all care about address calculation,
        // not data availability.
        let addr_ready = if inst.is_mem() {
            inst.srcs[0]
                .map(|r| {
                    if r.is_zero() {
                        0
                    } else {
                        st.reg_ready[r.flat_index()]
                    }
                })
                .unwrap_or(0)
                .max(dispatch)
        } else {
            ready
        };
        let head_arrival = st.cp_leave_prev.max(dispatch);
        // Estimate the completion cycle if the instruction executed in the CP.
        let est_mem_latency = inst
            .mem
            .map(|m| st.hierarchy.probe_latency(m.addr))
            .unwrap_or(0);
        let est_complete = ready + inst.op.latency() as u64 + est_mem_latency as u64;
        let fmc = cfg.fmc;
        // Migration policy (Section 3.2): an instruction moves to the Memory
        // Processor when it reaches the head of the CP ROB still waiting on a
        // long-latency event, and memory instructions additionally migrate in
        // program order "whenever the low-locality queues are active" so that
        // the small HL-LSQ only ever tracks the youngest references.
        let migrate = match fmc {
            Some(f) if !inst.wrong_path => {
                est_complete > head_arrival + f.migrate_threshold as u64
                    || (inst.is_mem() && st.lsq.ll_active())
            }
            _ => false,
        };

        // ------------------------------------------------------------------
        // Execute: either in the Cache Processor or in a Memory Engine.
        // ------------------------------------------------------------------
        let mut complete;
        let cp_leave;
        let mut migrated = false;
        let mut addr_calc_cycle = None;
        let mut forwarded = false;
        let mut forwarded_from = None;
        let mut older_unknown_store = false;
        let mut penalty_squash_at: Option<u64> = None;

        if !migrate {
            // High-locality execution in the out-of-order Cache Processor.
            let issue = st
                .issue_ports
                .reserve(if inst.is_mem() { addr_ready } else { ready });
            complete = issue.max(ready) + inst.op.latency() as u64;
            if let Some(mem) = inst.mem {
                addr_calc_cycle = Some(issue);
                if inst.is_load() {
                    let out = st
                        .lsq
                        .issue_load(seq, mem, issue, ExecSite::CacheProcessor, None);
                    forwarded = out.forwarded;
                    forwarded_from = out.forwarded_from;
                    older_unknown_store = out.older_unknown_store;
                    let port = st.cache_ports.reserve(issue);
                    let access = st.hierarchy.access(mem.addr, false);
                    if out.forwarded {
                        let data_at = out.forward_ready_at.unwrap_or(issue).max(issue);
                        complete = data_at + 1 + out.extra_latency as u64;
                        if out.partial_overlap {
                            complete += PARTIAL_OVERLAP_PENALTY;
                        }
                    } else {
                        complete = port + access.latency as u64 + out.extra_latency as u64;
                    }
                } else {
                    // Store: the address resolves as soon as its operand is
                    // ready; completion additionally waits for the data; the
                    // cache write happens at commit.
                    let out = st
                        .lsq
                        .resolve_store(seq, mem, issue, ExecSite::CacheProcessor, None);
                    complete = issue.max(ready) + 1 + out.extra_latency as u64;
                    if out.violation_load_seq.is_some() {
                        penalty_squash_at = Some(complete);
                    }
                }
            }
            cp_leave = complete.max(head_arrival);
        } else {
            // Low-locality execution: migrate to the current Memory Engine.
            migrated = true;
            let f = fmc.expect("migration only happens with the Memory Processor enabled");
            let mut migrate_cycle = head_arrival;
            if let Some(kind) = kind {
                // Restricted disambiguation may be stalling memory migration.
                let _ = kind;
                migrate_cycle = migrate_cycle.max(st.migration_blocked_until);
            }
            if st.mp_release.len() >= f.total_window() {
                migrate_cycle = migrate_cycle.max(*st.mp_release.front().expect("mp window"));
            }
            // Epoch management (one epoch per Memory Engine).
            let needs_new_epoch = match st.open_epoch {
                None => true,
                Some(e) => {
                    e.inst_count >= f.me_max_insts
                        || kind.map(|k| st.lsq.needs_new_epoch(k)).unwrap_or(false)
                }
            };
            if needs_new_epoch {
                if let Some(e) = st.open_epoch.take() {
                    st.closed_epochs.push_back((e.bank, e.release));
                }
                loop {
                    if let Some(bank) = st.lsq.open_epoch(seq) {
                        st.open_epoch = Some(OpenEpoch {
                            bank,
                            inst_count: 0,
                            release: migrate_cycle,
                        });
                        break;
                    }
                    // Every bank is live: wait for the oldest epoch to retire.
                    match st.closed_epochs.pop_front() {
                        Some((_bank, release)) => {
                            migrate_cycle = migrate_cycle.max(release);
                            st.lsq.commit_oldest_epoch(Some(st.hierarchy.l1_mut()));
                        }
                        None => {
                            // Only the open epoch remains (it is full); for
                            // central-LSQ FMC runs epochs are virtual, so
                            // just reuse bank 0.
                            st.open_epoch = Some(OpenEpoch {
                                bank: 0,
                                inst_count: 0,
                                release: migrate_cycle,
                            });
                            break;
                        }
                    }
                }
            }
            let epoch = st.open_epoch.as_mut().expect("an epoch is open");
            epoch.inst_count += 1;
            let bank = epoch.bank;
            complete = ready + inst.op.latency() as u64;

            // Execution locality: a memory instruction whose address operands
            // are ready before migration performs its address calculation and
            // cache access in the Cache Processor *first* ("loads that obtain
            // their address in the HL-LSQ but miss in the cache are also
            // migrated"). This is what preserves memory-level parallelism —
            // the miss is already in flight when the instruction moves to the
            // in-order Memory Engine to wait for its data.
            let early_issue = inst.is_mem() && addr_ready <= migrate_cycle;
            if early_issue {
                let mem = inst.mem_access();
                let issue = st.issue_ports.reserve(addr_ready);
                addr_calc_cycle = Some(issue);
                if inst.is_load() {
                    let out = st
                        .lsq
                        .issue_load(seq, mem, issue, ExecSite::CacheProcessor, None);
                    forwarded = out.forwarded;
                    forwarded_from = out.forwarded_from;
                    older_unknown_store = out.older_unknown_store;
                    let port = st.cache_ports.reserve(issue);
                    let access = st.hierarchy.access(mem.addr, false);
                    if out.forwarded {
                        let data_at = out.forward_ready_at.unwrap_or(issue).max(issue);
                        complete = data_at + 1 + out.extra_latency as u64;
                        if out.partial_overlap {
                            complete += PARTIAL_OVERLAP_PENALTY;
                        }
                    } else {
                        complete = port + access.latency as u64 + out.extra_latency as u64;
                    }
                } else {
                    let out = st
                        .lsq
                        .resolve_store(seq, mem, issue, ExecSite::CacheProcessor, None);
                    complete = issue.max(ready) + 1 + out.extra_latency as u64;
                    if out.violation_load_seq.is_some() {
                        penalty_squash_at = Some(complete);
                    }
                }
            }

            // Move the LSQ entry (ELSQ) — central queues keep it in place.
            if let Some(kind) = kind {
                if lsq_tracked {
                    match st.lsq.migrate(kind, seq, Some(st.hierarchy.l1_mut())) {
                        Ok(_) => {}
                        Err(_) => {
                            // Lock stall, capacity race or restricted-model
                            // stall: insertion waits one L2 round-trip while
                            // the oldest epoch (if any) retires and frees its
                            // locked lines, then tries once more.
                            migrate_cycle += cfg.hierarchy.l2.latency as u64;
                            st.result.sim.squashed += 1;
                            if let Some((_bank, release)) = st.closed_epochs.pop_front() {
                                migrate_cycle = migrate_cycle.max(release);
                                st.lsq.commit_oldest_epoch(Some(st.hierarchy.l1_mut()));
                            }
                            if st
                                .lsq
                                .migrate(kind, seq, Some(st.hierarchy.l1_mut()))
                                .is_err()
                            {
                                // No forward progress is possible this cycle;
                                // release the high-locality entry so the
                                // queues stay consistent (the instruction is
                                // accounted for by the timing model alone).
                                st.lsq.commit_mem(kind, seq);
                            }
                        }
                    }
                } else {
                    // The entry was never allocated (queue pressure from
                    // wrong-path bursts); nothing to move.
                }
            }

            if !early_issue {
                // In-order, 2-wide issue inside the Memory Engine.
                let arrival = migrate_cycle + f.network_one_way as u64;
                let me_slot = bank.min(st.me_issue.len() - 1);
                let me = &mut st.me_issue[me_slot];
                let mut issue = ready.max(arrival).max(me.0);
                if issue == me.0 && me.1 >= f.me_issue_width {
                    issue += 1;
                }
                if issue == me.0 {
                    me.1 += 1;
                } else {
                    *me = (issue, 1);
                }
                complete = issue + inst.op.latency() as u64;

                if let Some(mem) = inst.mem {
                    addr_calc_cycle = Some(issue);
                    let site = ExecSite::MemoryEngine { bank };
                    if inst.is_load() {
                        let out =
                            st.lsq
                                .issue_load(seq, mem, issue, site, Some(st.hierarchy.l1_mut()));
                        forwarded = out.forwarded;
                        forwarded_from = out.forwarded_from;
                        older_unknown_store = out.older_unknown_store;
                        if out.needs_squash {
                            penalty_squash_at = Some(issue);
                        }
                        if out.forwarded {
                            let data_at = out.forward_ready_at.unwrap_or(issue).max(issue);
                            complete = data_at + 1 + out.extra_latency as u64;
                            if out.partial_overlap {
                                complete += PARTIAL_OVERLAP_PENALTY;
                            }
                        } else {
                            // Cache access from the Memory Engine crosses the
                            // network both ways; with a central LSQ the search
                            // itself also pays the round-trip (Figure 7).
                            let remote = f.network_one_way as u64;
                            let port = st.cache_ports.reserve(issue + f.network_one_way as u64);
                            let access = st.hierarchy.access(mem.addr, false);
                            let central_penalty = match &st.lsq {
                                LsqDriver::Central(_) => 2 * f.network_one_way as u64,
                                LsqDriver::Elsq(_) => 0,
                            };
                            complete = port
                                + access.latency as u64
                                + out.extra_latency as u64
                                + remote
                                + central_penalty;
                        }
                    } else {
                        let out = st.lsq.resolve_store(
                            seq,
                            mem,
                            issue,
                            site,
                            Some(st.hierarchy.l1_mut()),
                        );
                        complete = issue + 1 + out.extra_latency as u64;
                        if out.needs_squash || out.violation_load_seq.is_some() {
                            penalty_squash_at = Some(complete);
                        }
                        // Restricted disambiguation: while this store's
                        // address was unknown no younger memory reference may
                        // migrate.
                        if let crate::config::LsqKind::Elsq(ecfg) = &cfg.lsq {
                            if ecfg.disambiguation.store_blocks_migration() && issue > migrate_cycle
                            {
                                st.migration_blocked_until = st.migration_blocked_until.max(issue);
                            }
                        }
                    }
                    if inst.is_load() {
                        if let crate::config::LsqKind::Elsq(ecfg) = &cfg.lsq {
                            if ecfg.disambiguation.load_blocks_migration() && issue > migrate_cycle
                            {
                                st.migration_blocked_until = st.migration_blocked_until.max(issue);
                            }
                        }
                    }
                }
            }

            // Track Memory-Processor busy time (Figure 11).
            if migrate_cycle > st.mp_busy_until {
                st.mp_busy_total += st.mp_busy_until.saturating_sub(st.mp_busy_start);
                st.mp_busy_start = migrate_cycle;
                st.mp_busy_until = complete;
            } else {
                st.mp_busy_until = st.mp_busy_until.max(complete);
            }

            cp_leave = migrate_cycle;
        }

        // ------------------------------------------------------------------
        // Commit (in order, commit-width per cycle).
        // ------------------------------------------------------------------
        let mut commit = st.commit_ports.reserve(complete.max(st.last_commit_cycle));
        if let Some(mem) = inst.mem {
            if inst.is_load() {
                // SVW re-execution check at commit.
                if let Some(svw) = st.svw.as_mut() {
                    let issue = addr_calc_cycle.unwrap_or(commit);
                    let safe_ssn = if forwarded {
                        forwarded_from.unwrap_or(0)
                    } else {
                        // Youngest store that had committed when the load
                        // issued. The log's commit cycles are non-decreasing
                        // (commit is in order), so binary search replaces the
                        // former backwards scan over up to 8192 entries.
                        let idx = st
                            .store_commit_log
                            .partition_point(|(cycle, _)| *cycle <= issue);
                        idx.checked_sub(1)
                            .map(|i| st.store_commit_log[i].1)
                            .unwrap_or(0)
                    };
                    let unknown_between = forwarded
                        && st
                            .lsq
                            .has_unknown_store_between(forwarded_from.unwrap_or(0), seq);
                    let vuln = LoadVulnerability {
                        addr: mem.addr,
                        safe_ssn,
                        forwarded,
                        unknown_store_between: unknown_between || older_unknown_store && !forwarded,
                    };
                    if svw.on_load_commit(vuln) {
                        // Re-execute: another cache access at commit delays
                        // this load and everything younger.
                        let port = st.cache_ports.reserve(commit);
                        let access = st.hierarchy.access(mem.addr, false);
                        commit = port + access.latency as u64;
                    }
                }
                if !migrated {
                    st.lsq.commit_mem(MemOpKind::Load, seq);
                }
            } else {
                // Stores write the data cache at commit.
                let port = st.cache_ports.reserve(commit);
                st.hierarchy.access(mem.addr, true);
                commit = commit.max(port);
                if let Some(svw) = st.svw.as_mut() {
                    svw.on_store_commit(seq, mem.addr);
                }
                st.store_commit_log.push_back((commit, seq));
                if st.store_commit_log.len() > STORE_COMMIT_LOG {
                    st.store_commit_log.pop_front();
                }
                if !migrated {
                    st.lsq.commit_mem(MemOpKind::Store, seq);
                }
            }
        }
        st.last_commit_cycle = st.last_commit_cycle.max(commit);

        // Ordering violations / lock conflicts: recovery redirects the front
        // end (the squashed work is approximated as a fetch bubble).
        if let Some(at) = penalty_squash_at {
            st.result.sim.squashed += (cfg.rob_size / 2) as u64;
            st.fetch_blocked_until = st.fetch_blocked_until.max(at + cfg.redirect_penalty as u64);
        }

        // ------------------------------------------------------------------
        // Retirement bookkeeping and statistics.
        // ------------------------------------------------------------------
        if let Some(dst) = inst.dst {
            if !dst.is_zero() {
                st.reg_ready[dst.flat_index()] = complete;
            }
        }
        st.rob_release.push_back(cp_leave);
        if st.rob_release.len() > cfg.rob_size {
            st.rob_release.pop_front();
        }
        if migrated {
            st.mp_release.push_back(commit);
            if let Some(f) = cfg.fmc {
                if st.mp_release.len() > f.total_window() {
                    st.mp_release.pop_front();
                }
            }
            if let Some(e) = st.open_epoch.as_mut() {
                e.release = e.release.max(commit);
            }
        }
        match kind {
            Some(MemOpKind::Load) => {
                let release = if migrated { cp_leave } else { commit };
                st.lq_release.push_back(release);
                if let Some(cap) = lq_cap {
                    if st.lq_release.len() > cap {
                        st.lq_release.pop_front();
                    }
                }
                st.result.sim.committed_loads += 1;
            }
            Some(MemOpKind::Store) => {
                let release = if migrated { cp_leave } else { commit };
                st.sq_release.push_back(release);
                if let Some(cap) = sq_cap {
                    if st.sq_release.len() > cap {
                        st.sq_release.pop_front();
                    }
                }
                st.result.sim.committed_stores += 1;
            }
            None => {}
        }
        if let Some(calc) = addr_calc_cycle {
            let distance = calc.saturating_sub(dispatch);
            st.result.sim.addr_calc_distance_sum += distance;
            if inst.is_load() {
                st.result.load_addr_hist.record(distance);
            } else {
                st.result.store_addr_hist.record(distance);
            }
        }
        st.result.sim.committed += 1;
        st.cp_leave_prev = st.cp_leave_prev.max(cp_leave);

        InstTiming { complete }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CpuConfig, LsqKind};
    use elsq_core::central::CentralLsqConfig;
    use elsq_isa::trace::LoopTrace;
    use elsq_isa::{ArchReg, InstBuilder, OpClass};
    use elsq_workload::pointer::PointerChaseInt;
    use elsq_workload::streaming::StreamingFp;

    fn run(config: CpuConfig, workload: &mut dyn TraceSource, commits: u64) -> SimResult {
        Processor::new(config).run(workload, commits)
    }

    /// A tiny cache-friendly kernel: independent ALU ops plus a load that
    /// always hits after warm-up.
    fn alu_kernel() -> LoopTrace {
        let mut insts = Vec::new();
        for i in 0..8u64 {
            insts.push(
                InstBuilder::alu(i * 4, OpClass::IntAlu)
                    .dst(ArchReg::int((1 + i % 4) as u8))
                    .src(ArchReg::int(0))
                    .build(),
            );
        }
        insts.push(
            InstBuilder::load(0x40, 0x100, 8)
                .dst(ArchReg::int(9))
                .src(ArchReg::int(0))
                .build(),
        );
        LoopTrace::new(insts).named("alu-kernel")
    }

    #[test]
    fn cache_friendly_kernel_reaches_high_ipc() {
        let mut t = alu_kernel();
        let r = run(CpuConfig::ooo64(), &mut t, 20_000);
        assert!(r.ipc() > 1.5, "IPC {} too low for an ALU kernel", r.ipc());
        assert!(r.ipc() <= 4.0, "IPC {} exceeds machine width", r.ipc());
        assert_eq!(r.sim.committed, 20_000);
    }

    #[test]
    fn memory_bound_workload_is_slow_on_small_rob() {
        let mut t = StreamingFp::swim_like(1);
        let r = run(CpuConfig::ooo64(), &mut t, 30_000);
        assert!(
            r.ipc() < 1.5,
            "IPC {} too high for a streaming workload",
            r.ipc()
        );
        assert!(r.sim.committed_loads > 0);
        assert!(r.sim.committed_stores > 0);
    }

    #[test]
    fn fmc_outperforms_ooo64_on_streaming_fp() {
        let mut t1 = StreamingFp::swim_like(1);
        let base = run(CpuConfig::ooo64(), &mut t1, 30_000);
        let mut t2 = StreamingFp::swim_like(1);
        let fmc = run(CpuConfig::fmc_hash(true), &mut t2, 30_000);
        assert!(
            fmc.ipc() > 1.3 * base.ipc(),
            "FMC {} vs OoO {}: the large window should help a lot",
            fmc.ipc(),
            base.ipc()
        );
        // The Memory Processor was actually used.
        assert!(fmc.sim.epochs_allocated > 0);
        assert!(fmc.lsq.ert_lookups > 0);
    }

    #[test]
    fn fmc_gain_is_smaller_on_pointer_chasing_int() {
        let mut t1 = PointerChaseInt::mcf_like(1);
        let base = run(CpuConfig::ooo64(), &mut t1, 30_000);
        let mut t2 = PointerChaseInt::mcf_like(1);
        let fmc = run(CpuConfig::fmc_hash(true), &mut t2, 30_000);
        let speedup = fmc.ipc() / base.ipc();
        let mut t3 = StreamingFp::swim_like(1);
        let fp_base = run(CpuConfig::ooo64(), &mut t3, 30_000);
        let mut t4 = StreamingFp::swim_like(1);
        let fp_fmc = run(CpuConfig::fmc_hash(true), &mut t4, 30_000);
        let fp_speedup = fp_fmc.ipc() / fp_base.ipc();
        assert!(
            fp_speedup > speedup,
            "FP speed-up {fp_speedup} should exceed INT speed-up {speedup}"
        );
    }

    #[test]
    fn wrong_path_activity_is_counted() {
        let mut t = PointerChaseInt::parser_like(5);
        let r = run(CpuConfig::ooo64(), &mut t, 20_000);
        assert!(r.sim.branch_mispredicts > 0);
        assert!(r.sim.wrong_path_fetched > 0);
        assert!(r.sim.squashed >= r.sim.wrong_path_fetched);
    }

    #[test]
    fn svw_counts_reexecutions() {
        let mut t = PointerChaseInt::parser_like(3);
        let r = run(CpuConfig::ooo64_svw(8, false), &mut t, 20_000);
        assert!(r.lsq.ssbf_lookups > 0);
        // With an 8-bit blind filter some loads re-execute.
        assert!(r.lsq.load_reexecutions > 0);
        // The associative load queue is gone.
        assert_eq!(r.lsq.hl_lq_searches, 0);
    }

    #[test]
    fn figure1_histogram_is_populated() {
        let mut t = StreamingFp::swim_like(2);
        let r = run(CpuConfig::fmc_hash(true), &mut t, 20_000);
        assert!(r.load_addr_hist.total() > 0);
        assert!(r.store_addr_hist.total() > 0);
        // Most address calculations happen shortly after decode.
        assert!(r.load_addr_hist.first_bin_fraction() > 0.5);
        assert!(r.store_addr_hist.first_bin_fraction() > 0.5);
    }

    #[test]
    fn ll_idle_fraction_increases_with_larger_l2() {
        let mut small_cfg = CpuConfig::fmc_hash(true);
        small_cfg.hierarchy = small_cfg.hierarchy.with_l2_mb(1);
        let mut big_cfg = CpuConfig::fmc_hash(true);
        big_cfg.hierarchy = big_cfg.hierarchy.with_l2_mb(8);
        let mut t1 = elsq_workload::matrix::MatrixBlockFp::facerec_like(1);
        let small = run(small_cfg, &mut t1, 30_000);
        let mut t2 = elsq_workload::matrix::MatrixBlockFp::facerec_like(1);
        let big = run(big_cfg, &mut t2, 30_000);
        assert!(
            big.sim.ll_idle_fraction() >= small.sim.ll_idle_fraction(),
            "bigger L2 ({}) should not reduce idle fraction ({})",
            big.sim.ll_idle_fraction(),
            small.sim.ll_idle_fraction()
        );
    }

    #[test]
    fn unlimited_central_lsq_never_blocks_fetch_on_lsq() {
        let mut t = StreamingFp::swim_like(4);
        let cfg = CpuConfig {
            lsq: LsqKind::Central(CentralLsqConfig::unlimited()),
            ..CpuConfig::fmc_central_ideal()
        };
        let r = run(cfg, &mut t, 20_000);
        assert!(r.ipc() > 0.0);
    }

    #[test]
    fn commit_is_monotonic_and_cycles_positive() {
        let mut t = alu_kernel();
        let r = run(CpuConfig::fmc_hash(true), &mut t, 5_000);
        assert!(r.sim.cycles > 0);
        assert_eq!(r.sim.committed, 5_000);
        assert!(r.sim.ll_idle_cycles + r.sim.ll_active_cycles == r.sim.cycles);
    }

    #[test]
    fn sampled_run_collects_one_window_per_period() {
        let spec = SamplingSpec::new(1_000, 200, 100).unwrap();
        let mut t = StreamingFp::swim_like(1);
        let r = Processor::new(CpuConfig::ooo64()).run_sampled(&mut t, 20_000, spec);
        let s = r.sampling.as_ref().expect("sampled run records sampling");
        assert_eq!(s.window_count(), 20);
        assert_eq!(s.skipped, 20 * 700);
        assert_eq!(s.warmed, 20 * 100);
        for w in &s.windows {
            assert_eq!(w.committed, 200);
            assert!(w.cycles > 0);
        }
        assert_eq!(r.sim.committed, 20 * 200);
        assert!(s.mean_ipc() > 0.0);
        assert!(s.ci95_half_width() >= 0.0);
    }

    #[test]
    fn all_detailed_spec_matches_the_plain_run() {
        // window == period means nothing is skipped or warmed: the sampled
        // run must walk exactly the plain run's path.
        let spec = SamplingSpec::new(500, 500, 0).unwrap();
        let mut t1 = PointerChaseInt::mcf_like(3);
        let sampled = Processor::new(CpuConfig::fmc_hash(true)).run_sampled(&mut t1, 10_000, spec);
        let mut t2 = PointerChaseInt::mcf_like(3);
        let plain = run(CpuConfig::fmc_hash(true), &mut t2, 10_000);
        assert_eq!(sampled.sim, plain.sim);
        assert_eq!(sampled.lsq, plain.lsq);
        let s = sampled.sampling.unwrap();
        assert_eq!(s.window_count(), 20);
        assert_eq!(s.skipped + s.warmed, 0);
    }

    #[test]
    fn sampled_runs_are_deterministic() {
        let spec = SamplingSpec::new(2_000, 300, 150).unwrap();
        let run_once = || {
            let mut t = StreamingFp::swim_like(9);
            Processor::new(CpuConfig::fmc_hash(true)).run_sampled(&mut t, 30_000, spec)
        };
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn sampled_run_stops_cleanly_at_trace_end() {
        use elsq_isa::trace::VecTrace;
        let mut insts = Vec::new();
        for i in 0..1_500u64 {
            insts.push(
                InstBuilder::alu(i * 4, OpClass::IntAlu)
                    .dst(ArchReg::int(1))
                    .src(ArchReg::int(0))
                    .build(),
            );
        }
        let spec = SamplingSpec::new(1_000, 100, 50).unwrap();
        let mut t = VecTrace::new(insts);
        let r = Processor::new(CpuConfig::ooo64()).run_sampled(&mut t, 50_000, spec);
        let s = r.sampling.unwrap();
        // Period 1: skip 850 + warm 50 + window 100 = 1000. Period 2: the
        // trace ends 500 instructions in, mid-skip.
        assert_eq!(s.window_count(), 1);
        assert_eq!(s.skipped, 850 + 500);
        assert_eq!(s.warmed, 50);
        assert_eq!(r.sim.committed, 100);
    }
}
