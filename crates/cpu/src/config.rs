//! Processor configuration (Table 1 defaults) and the named configurations
//! used throughout the evaluation.

use serde::{Deserialize, Serialize};

use elsq_core::central::CentralLsqConfig;
use elsq_core::config::{ElsqConfig, ErtKind, ReexecMode};
use elsq_core::disambig::DisambiguationModel;
use elsq_mem::hierarchy::HierarchyConfig;

/// Store Vulnerability Window (re-execution) parameters applied on top of a
/// processor configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SvwParams {
    /// SSBF index bits (Figure 10 sweeps 8/10/12).
    pub ssbf_bits: u32,
    /// Whether the no-unresolved-store ("CheckStores") filter is implemented.
    pub check_stores: bool,
}

/// Which LSQ the processor uses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LsqKind {
    /// A central LSQ (finite CAM for the OoO baseline or unlimited idealized
    /// queue for the Figure 7 comparison). On the FMC, the central queue
    /// lives in the Cache Processor and loads executing in the Memory
    /// Processor pay the network round-trip.
    Central(CentralLsqConfig),
    /// The Epoch-based LSQ.
    Elsq(ElsqConfig),
}

/// Memory-Processor (FMC) parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FmcConfig {
    /// Number of Memory Engines (= number of epochs): 16.
    pub num_engines: usize,
    /// Maximum instructions of any kind per engine: 128.
    pub me_max_insts: usize,
    /// Per-engine issue width (in-order): 2.
    pub me_issue_width: u32,
    /// One-way CP <-> MP network latency: 4 cycles.
    pub network_one_way: u32,
    /// An instruction at the head of the CP ROB migrates instead of blocking
    /// when its completion is at least this many cycles away (roughly the L2
    /// latency plus scheduling slack).
    pub migrate_threshold: u32,
}

impl Default for FmcConfig {
    fn default() -> Self {
        Self {
            num_engines: 16,
            me_max_insts: 128,
            me_issue_width: 2,
            network_one_way: 4,
            migrate_threshold: 16,
        }
    }
}

impl FmcConfig {
    /// Total Memory Processor window (instructions across all engines).
    pub fn total_window(&self) -> usize {
        self.num_engines * self.me_max_insts
    }
}

/// Full processor configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuConfig {
    /// Fetch/decode bandwidth (instructions per cycle): 4.
    pub fetch_width: u32,
    /// Commit bandwidth (instructions per cycle): 4.
    pub commit_width: u32,
    /// Cache Processor issue width (out-of-order): 4.
    pub issue_width: u32,
    /// Cache Processor reorder buffer size: 64.
    pub rob_size: usize,
    /// Front-end depth from fetch to dispatch, in cycles.
    pub frontend_depth: u32,
    /// Cycles to redirect fetch after a resolved misprediction or squash.
    pub redirect_penalty: u32,
    /// Number of data-cache ports: 2.
    pub cache_ports: u32,
    /// Memory hierarchy (L1 / L2 / main memory).
    pub hierarchy: HierarchyConfig,
    /// The Memory Processor; `None` disables it (conventional OoO).
    pub fmc: Option<FmcConfig>,
    /// LSQ model.
    pub lsq: LsqKind,
    /// Load re-execution (SVW) instead of an associative load queue.
    pub svw: Option<SvwParams>,
}

impl CpuConfig {
    /// The conventional OoO-64 baseline of Figure 7 / Table 2.
    pub fn ooo64() -> Self {
        Self {
            fetch_width: 4,
            commit_width: 4,
            issue_width: 4,
            rob_size: 64,
            frontend_depth: 3,
            redirect_penalty: 5,
            cache_ports: 2,
            hierarchy: HierarchyConfig::default(),
            fmc: None,
            lsq: LsqKind::Central(CentralLsqConfig::conventional()),
            svw: None,
        }
    }

    /// OoO-64 with SVW re-execution (non-associative load queue).
    pub fn ooo64_svw(ssbf_bits: u32, check_stores: bool) -> Self {
        Self {
            lsq: LsqKind::Central(CentralLsqConfig::conventional_svw()),
            svw: Some(SvwParams {
                ssbf_bits,
                check_stores,
            }),
            ..Self::ooo64()
        }
    }

    /// FMC with the idealized unlimited central LSQ (Figure 7's
    /// "Central LSQ" bar).
    pub fn fmc_central_ideal() -> Self {
        Self {
            fmc: Some(FmcConfig::default()),
            lsq: LsqKind::Central(CentralLsqConfig::unlimited()),
            ..Self::ooo64()
        }
    }

    /// FMC with the ELSQ in a given configuration.
    pub fn fmc_elsq(elsq: ElsqConfig) -> Self {
        Self {
            fmc: Some(FmcConfig::default()),
            lsq: LsqKind::Elsq(elsq),
            ..Self::ooo64()
        }
    }

    /// FMC + ELSQ with the hash-based ERT (optionally with the SQM).
    pub fn fmc_hash(sqm: bool) -> Self {
        Self::fmc_elsq(ElsqConfig::default().with_sqm(sqm))
    }

    /// FMC + ELSQ with the line-based ERT (optionally with the SQM).
    pub fn fmc_line(sqm: bool) -> Self {
        Self::fmc_elsq(ElsqConfig::default().with_ert(ErtKind::Line).with_sqm(sqm))
    }

    /// FMC + ELSQ (hash ERT, SQM) with restricted store address calculation.
    pub fn fmc_hash_rsac() -> Self {
        Self::fmc_elsq(
            ElsqConfig::default().with_disambiguation(DisambiguationModel::RestrictedSac),
        )
    }

    /// FMC + ELSQ (hash ERT, SQM) with SVW load re-execution.
    pub fn fmc_hash_svw(ssbf_bits: u32, check_stores: bool) -> Self {
        let mut cfg = Self::fmc_elsq(ElsqConfig::default().with_reexec(ReexecMode::Svw {
            ssbf_bits,
            check_stores,
        }));
        cfg.svw = Some(SvwParams {
            ssbf_bits,
            check_stores,
        });
        cfg
    }

    /// Effective window size: ROB plus the Memory Processor window.
    pub fn window_size(&self) -> usize {
        self.rob_size + self.fmc.map(|f| f.total_window()).unwrap_or(0)
    }

    /// Whether the Memory Processor is enabled.
    pub fn is_fmc(&self) -> bool {
        self.fmc.is_some()
    }
}

impl Default for CpuConfig {
    fn default() -> Self {
        Self::ooo64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_defaults() {
        let c = CpuConfig::ooo64();
        assert_eq!(c.fetch_width, 4);
        assert_eq!(c.rob_size, 64);
        assert_eq!(c.cache_ports, 2);
        assert_eq!(c.hierarchy.memory_latency, 400);
        assert!(!c.is_fmc());
        assert_eq!(c.window_size(), 64);
        let f = FmcConfig::default();
        assert_eq!(f.num_engines, 16);
        assert_eq!(f.me_max_insts, 128);
        assert_eq!(f.me_issue_width, 2);
        assert_eq!(f.network_one_way, 4);
        assert_eq!(f.total_window(), 2048);
    }

    #[test]
    fn named_configs_select_the_right_lsq() {
        assert!(matches!(CpuConfig::ooo64().lsq, LsqKind::Central(c) if c.lq_entries.is_some()));
        assert!(matches!(
            CpuConfig::fmc_central_ideal().lsq,
            LsqKind::Central(c) if c.lq_entries.is_none()
        ));
        assert!(matches!(CpuConfig::fmc_hash(true).lsq, LsqKind::Elsq(_)));
        let line = CpuConfig::fmc_line(false);
        if let LsqKind::Elsq(e) = line.lsq {
            assert_eq!(e.ert, ErtKind::Line);
            assert!(!e.sqm);
        } else {
            panic!("expected ELSQ");
        }
        let rsac = CpuConfig::fmc_hash_rsac();
        if let LsqKind::Elsq(e) = rsac.lsq {
            assert_eq!(e.disambiguation, DisambiguationModel::RestrictedSac);
        } else {
            panic!("expected ELSQ");
        }
    }

    #[test]
    fn svw_configs_carry_parameters() {
        let c = CpuConfig::ooo64_svw(10, true);
        assert_eq!(
            c.svw,
            Some(SvwParams {
                ssbf_bits: 10,
                check_stores: true
            })
        );
        if let LsqKind::Central(cc) = c.lsq {
            assert!(!cc.associative_lq);
        } else {
            panic!("expected central LSQ");
        }
        let f = CpuConfig::fmc_hash_svw(8, false);
        assert!(f.is_fmc());
        assert_eq!(f.window_size(), 64 + 2048);
        if let LsqKind::Elsq(e) = f.lsq {
            assert!(e.reexec.is_svw());
        } else {
            panic!("expected ELSQ");
        }
    }
}
