//! A uniform driver over the LSQ models so the pipeline can swap between the
//! conventional central LSQ and the Epoch-based LSQ without changing its
//! control flow.

use elsq_core::central::CentralLsq;
use elsq_core::elsq::{Elsq, MigrateError};
use elsq_core::queue::MemOpKind;
use elsq_isa::MemAccess;
use elsq_mem::cache::SetAssocCache;
use elsq_stats::counters::LsqAccessCounters;

use crate::config::LsqKind;

/// Where a memory operation executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecSite {
    /// In the Cache Processor (high-locality stream).
    CacheProcessor,
    /// In a Memory Engine / epoch bank (low-locality stream).
    MemoryEngine {
        /// The epoch bank.
        bank: usize,
    },
}

/// Result of issuing a load through the driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DriverLoadResult {
    /// Whether the load forwards from an in-flight store.
    pub forwarded: bool,
    /// Sequence number of the forwarding store.
    pub forwarded_from: Option<u64>,
    /// Cycle when the forwarding store's data is available.
    pub forward_ready_at: Option<u64>,
    /// Whether the forwarding store only partially covers the load.
    pub partial_overlap: bool,
    /// Extra latency from filters, searches and network trips.
    pub extra_latency: u32,
    /// Line-based ERT lock conflict: the window must be squashed.
    pub needs_squash: bool,
    /// Whether an older store still had an unknown address at issue.
    pub older_unknown_store: bool,
}

/// Result of resolving a store address through the driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DriverStoreResult {
    /// A younger issued load read stale data: squash from this load.
    pub violation_load_seq: Option<u64>,
    /// Extra latency from searches and network trips.
    pub extra_latency: u32,
    /// Line-based ERT lock conflict: the window must be squashed.
    pub needs_squash: bool,
}

/// The LSQ backend driven by the pipeline.
#[derive(Debug)]
pub enum LsqDriver {
    /// A conventional or idealized central LSQ.
    Central(CentralLsq),
    /// The Epoch-based LSQ.
    Elsq(Box<Elsq>),
}

impl LsqDriver {
    /// Builds the driver from a configuration.
    pub fn new(kind: &LsqKind) -> Self {
        match kind {
            LsqKind::Central(cfg) => LsqDriver::Central(CentralLsq::new(*cfg)),
            LsqKind::Elsq(cfg) => LsqDriver::Elsq(Box::new(Elsq::new(*cfg))),
        }
    }

    /// Whether the queue that would hold a new `kind` entry has room.
    pub fn has_room(&self, kind: MemOpKind) -> bool {
        match self {
            LsqDriver::Central(l) => l.has_room(kind),
            LsqDriver::Elsq(l) => l.hl_has_room(kind),
        }
    }

    /// Allocates an entry at decode. Returns `false` when the queue is full
    /// (the caller must have checked [`LsqDriver::has_room`]).
    pub fn allocate(&mut self, kind: MemOpKind, seq: u64) -> bool {
        match self {
            LsqDriver::Central(l) => l.allocate(kind, seq).is_ok(),
            LsqDriver::Elsq(l) => l.allocate_hl(kind, seq).is_ok(),
        }
    }

    /// Issues a load at `cycle` from `site`.
    pub fn issue_load(
        &mut self,
        seq: u64,
        addr: MemAccess,
        cycle: u64,
        site: ExecSite,
        l1: Option<&mut SetAssocCache>,
    ) -> DriverLoadResult {
        match self {
            LsqDriver::Central(l) => {
                let out = l.issue_load(seq, addr, cycle);
                DriverLoadResult {
                    forwarded: out.forward.is_some(),
                    forwarded_from: out.forward.map(|f| f.store_seq),
                    forward_ready_at: out.forward.map(|f| f.data_ready_at),
                    partial_overlap: out.forward.map(|f| !f.full_cover).unwrap_or(false),
                    extra_latency: 1,
                    needs_squash: false,
                    older_unknown_store: out.older_unknown_store,
                }
            }
            LsqDriver::Elsq(l) => {
                let out = match site {
                    ExecSite::CacheProcessor => l.issue_hl_load(seq, addr, cycle),
                    ExecSite::MemoryEngine { bank } => l.issue_ll_load(bank, seq, addr, cycle, l1),
                };
                DriverLoadResult {
                    forwarded: out.forwarded_from.is_some(),
                    forwarded_from: out.forwarded_from,
                    forward_ready_at: out.forward_ready_at,
                    partial_overlap: out.partial_overlap_with.is_some(),
                    extra_latency: out.extra_latency,
                    needs_squash: out.lock_conflict_squash,
                    older_unknown_store: out.older_unknown_store,
                }
            }
        }
    }

    /// Resolves a store's address (and data) at `cycle` from `site`.
    pub fn resolve_store(
        &mut self,
        seq: u64,
        addr: MemAccess,
        cycle: u64,
        site: ExecSite,
        l1: Option<&mut SetAssocCache>,
    ) -> DriverStoreResult {
        match self {
            LsqDriver::Central(l) => DriverStoreResult {
                violation_load_seq: l.store_address_ready(seq, addr, cycle),
                extra_latency: 1,
                needs_squash: false,
            },
            LsqDriver::Elsq(l) => {
                let out = match site {
                    ExecSite::CacheProcessor => l.hl_store_address_ready(seq, addr, cycle),
                    ExecSite::MemoryEngine { bank } => {
                        l.ll_store_address_ready(bank, seq, addr, cycle, l1)
                    }
                };
                DriverStoreResult {
                    violation_load_seq: out.violation_load_seq,
                    extra_latency: out.extra_latency,
                    needs_squash: out.lock_conflict_squash,
                }
            }
        }
    }

    /// Whether a new epoch must be opened before `kind` can migrate
    /// (ELSQ only; always `false` for central queues).
    pub fn needs_new_epoch(&self, kind: MemOpKind) -> bool {
        match self {
            LsqDriver::Central(_) => false,
            LsqDriver::Elsq(l) => l.migration_target(kind).is_none(),
        }
    }

    /// Opens a new epoch starting at `first_seq`. Returns the bank, or `None`
    /// when every bank is live (the caller must retire the oldest epoch
    /// first). Central queues report bank 0 unconditionally.
    pub fn open_epoch(&mut self, first_seq: u64) -> Option<usize> {
        match self {
            LsqDriver::Central(_) => Some(0),
            LsqDriver::Elsq(l) => l.open_epoch(first_seq).ok(),
        }
    }

    /// Migrates a memory instruction into the youngest epoch. Central queues
    /// treat migration as a no-op (the queue is shared), reporting bank 0.
    pub fn migrate(
        &mut self,
        kind: MemOpKind,
        seq: u64,
        l1: Option<&mut SetAssocCache>,
    ) -> Result<usize, MigrateError> {
        match self {
            LsqDriver::Central(_) => Ok(0),
            LsqDriver::Elsq(l) => l.migrate_to_ll(kind, seq, l1),
        }
    }

    /// Retires the oldest epoch (ELSQ only). Uses the allocation-free path:
    /// the cycle loop never inspects the retired stores (their write-back is
    /// accounted at instruction commit), so nothing is materialized.
    pub fn commit_oldest_epoch(&mut self, l1: Option<&mut SetAssocCache>) {
        if let LsqDriver::Elsq(l) = self {
            l.retire_oldest_epoch(l1);
        }
    }

    /// Number of live epochs (0 for central queues).
    pub fn live_epochs(&self) -> usize {
        match self {
            LsqDriver::Central(_) => 0,
            LsqDriver::Elsq(l) => l.live_epochs(),
        }
    }

    /// Total epochs allocated over the run (0 for central queues).
    pub fn epochs_allocated(&self) -> u64 {
        match self {
            LsqDriver::Central(_) => 0,
            LsqDriver::Elsq(l) => l.epochs_allocated(),
        }
    }

    /// Commits (removes) a non-migrated memory instruction.
    pub fn commit_mem(&mut self, kind: MemOpKind, seq: u64) {
        match self {
            LsqDriver::Central(l) => {
                l.commit(kind, seq);
            }
            LsqDriver::Elsq(l) => {
                l.commit_hl(kind, seq);
            }
        }
    }

    /// Squashes every entry with sequence number `>= from_seq` in the
    /// youngest (high-locality / central) portion of the queue — used for
    /// wrong-path recovery.
    pub fn squash_from(&mut self, from_seq: u64) {
        match self {
            LsqDriver::Central(l) => {
                l.squash_from(from_seq);
            }
            LsqDriver::Elsq(l) => {
                l.squash_hl_from(from_seq);
            }
        }
    }

    /// Whether any store between `store_seq` and `load_seq` has an unknown
    /// address (SVW CheckStores predicate).
    pub fn has_unknown_store_between(&self, store_seq: u64, load_seq: u64) -> bool {
        match self {
            LsqDriver::Central(l) => l.has_unknown_store_between(store_seq, load_seq),
            LsqDriver::Elsq(l) => l.has_unknown_store_between(store_seq, load_seq),
        }
    }

    /// Whether the Memory Processor side of the queue is active.
    pub fn ll_active(&self) -> bool {
        match self {
            LsqDriver::Central(_) => false,
            LsqDriver::Elsq(l) => l.ll_active(),
        }
    }

    /// Snapshot of the access counters.
    pub fn counters(&self) -> LsqAccessCounters {
        match self {
            LsqDriver::Central(l) => *l.counters(),
            LsqDriver::Elsq(l) => *l.counters(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elsq_core::central::CentralLsqConfig;
    use elsq_core::config::ElsqConfig;

    fn acc(a: u64) -> MemAccess {
        MemAccess::new(a, 8)
    }

    #[test]
    fn central_driver_forwards_and_detects_violations() {
        let mut d = LsqDriver::new(&LsqKind::Central(CentralLsqConfig::conventional()));
        assert!(d.has_room(MemOpKind::Store));
        assert!(d.allocate(MemOpKind::Store, 1));
        assert!(d.allocate(MemOpKind::Load, 2));
        let st = d.resolve_store(1, acc(0x80), 5, ExecSite::CacheProcessor, None);
        assert!(st.violation_load_seq.is_none());
        let ld = d.issue_load(2, acc(0x80), 6, ExecSite::CacheProcessor, None);
        assert!(ld.forwarded);
        assert_eq!(ld.forwarded_from, Some(1));
        d.commit_mem(MemOpKind::Store, 1);
        d.commit_mem(MemOpKind::Load, 2);
        assert!(!d.ll_active());
        assert_eq!(d.live_epochs(), 0);
        assert!(d.open_epoch(0).is_some());
        assert!(d.migrate(MemOpKind::Load, 99, None).is_ok());
    }

    #[test]
    fn elsq_driver_round_trips_through_epochs() {
        let mut d = LsqDriver::new(&LsqKind::Elsq(ElsqConfig::default()));
        assert!(d.allocate(MemOpKind::Store, 1));
        let st = d.resolve_store(1, acc(0x100), 3, ExecSite::CacheProcessor, None);
        assert_eq!(st.violation_load_seq, None);
        assert!(!d.needs_new_epoch(MemOpKind::Store) || d.live_epochs() == 0);
        d.open_epoch(1).unwrap();
        let bank = d.migrate(MemOpKind::Store, 1, None).unwrap();
        assert!(d.ll_active());
        assert_eq!(d.epochs_allocated(), 1);
        assert!(d.allocate(MemOpKind::Load, 5));
        let ld = d.issue_load(5, acc(0x100), 9, ExecSite::CacheProcessor, None);
        assert!(ld.forwarded);
        // A low-locality load in the same bank sees the store locally.
        assert!(d.allocate(MemOpKind::Load, 6));
        d.migrate(MemOpKind::Load, 6, None).unwrap();
        let ld = d.issue_load(6, acc(0x100), 12, ExecSite::MemoryEngine { bank }, None);
        assert!(ld.forwarded);
        d.commit_oldest_epoch(None);
        assert_eq!(d.live_epochs(), 0);
        let counters = d.counters();
        assert!(counters.hl_sq_searches >= 1);
        assert!(counters.local_forwards + counters.global_forwards >= 2);
    }

    #[test]
    fn unknown_store_between_is_visible_through_driver() {
        let mut d = LsqDriver::new(&LsqKind::Elsq(ElsqConfig::default()));
        d.allocate(MemOpKind::Store, 3);
        assert!(d.has_unknown_store_between(1, 9));
        d.squash_from(0);
        assert!(!d.has_unknown_store_between(1, 9));
    }
}
