//! Record/replay determinism: a generator suite dumped to `.etrc` files and
//! replayed through the trace override must reproduce the generator-driven
//! results byte-for-byte, on both the sequential and the work-stealing
//! parallel paths.

use std::path::PathBuf;
use std::sync::{Arc, Mutex, OnceLock};

use elsq::elsq_cpu::config::CpuConfig;
use elsq::elsq_sim::driver::{
    install_trace_override, run_suite, run_suite_sequential, run_suite_with_threads,
    ExperimentParams,
};
use elsq::elsq_workload::suite::{suite, TraceRoster, WorkloadClass};

/// The trace override is process-global, so tests that install it must not
/// overlap with each other (libtest runs `#[test]`s of one binary in
/// parallel threads).
fn override_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

fn dump_suites(dir: &std::path::Path, seed: u64, insts: u64) {
    std::fs::create_dir_all(dir).unwrap();
    for class in [WorkloadClass::Fp, WorkloadClass::Int] {
        for (slot, mut workload) in suite(class, seed).into_iter().enumerate() {
            let name = format!("{}-{slot}-{}.etrc", class.key(), workload.name());
            let file = std::fs::File::create(dir.join(name)).unwrap();
            elsq::elsq_isa::etrc::record(
                workload.as_mut(),
                insts,
                seed,
                class.suite_tag(),
                Some(slot as u8),
                std::io::BufWriter::new(file),
            )
            .unwrap();
        }
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("elsq-replay-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn recorded_replay_matches_generator_run_on_every_driver_path() {
    let _serial = override_lock().lock().unwrap();
    let params = ExperimentParams {
        commits: 900,
        seed: 13,
        sample: None,
    };
    let dir = tmp_dir("driver");
    dump_suites(&dir, params.seed, params.commits);
    let roster = Arc::new(TraceRoster::from_dir(&dir).unwrap());

    for config in [CpuConfig::ooo64(), CpuConfig::fmc_hash(true)] {
        for class in [WorkloadClass::Fp, WorkloadClass::Int] {
            let generated = run_suite_sequential(config, class, &params);

            let guard = install_trace_override(Arc::clone(&roster));
            let replay_seq = run_suite_sequential(config, class, &params);
            let replay_par = run_suite(config, class, &params);
            let replay_threads = run_suite_with_threads(config, class, &params, 3);
            drop(guard);

            assert_eq!(replay_seq, generated, "{class}: sequential replay diverged");
            assert_eq!(replay_par, generated, "{class}: parallel replay diverged");
            assert_eq!(
                replay_threads, generated,
                "{class}: 3-thread replay diverged"
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn replay_is_stable_across_reopens_and_override_restores() {
    let _serial = override_lock().lock().unwrap();
    let params = ExperimentParams {
        commits: 400,
        seed: 21,
        sample: None,
    };
    let dir = tmp_dir("stable");
    dump_suites(&dir, params.seed, params.commits);
    let roster = Arc::new(TraceRoster::from_dir(&dir).unwrap());
    let config = CpuConfig::fmc_line(false);

    let guard = install_trace_override(Arc::clone(&roster));
    let first = run_suite(config, WorkloadClass::Int, &params);
    let second = run_suite(config, WorkloadClass::Int, &params);
    assert_eq!(first, second, "re-opened traces must replay identically");
    drop(guard);

    // With the guard dropped the generators are back; same streams were
    // recorded, so results still match — but via a different source.
    assert!(elsq::elsq_sim::driver::trace_override().is_none());
    let generated = run_suite(config, WorkloadClass::Int, &params);
    assert_eq!(generated, first);
    std::fs::remove_dir_all(&dir).ok();
}
