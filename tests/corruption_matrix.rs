//! The corruption matrix (ISSUE 8, satellite c): flip one bit of *every*
//! byte of each durable file — `point-<hash>.json`, `manifest.json`,
//! `job-<id>.json` — and require every single flip to surface as a loud,
//! named error. No flip may ever be absorbed silently, and a corrupt cache
//! must never fall back to recomputing (which would discard the evidence
//! and quietly bless a damaged store).
//!
//! Why exhaustiveness is achievable: the decoders require every field
//! (the vendored serde has no unknown-field fallback for *required* keys
//! and no implicit `Option` default), whitespace admits no single-bit flip
//! to another JSON whitespace byte, and the files carry whole-content
//! checksums — so a flip either breaks UTF-8 (read error), breaks the
//! syntax (decode error), renames a key (missing-field error), or changes
//! a value (checksum/version/identity error).

use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use elsq_serve::job::{
    load_records, record_path, write_record, JobRecord, PointEvent, JOB_RECORD_VERSION,
};
use elsq_serve::JobState;
use elsq_sim::driver::install_result_cache;
use elsq_sim::scenario::{run_plan, PointKey, ScenarioSpec};
use elsq_sim::store::ResultStore;
use elsq_workload::suite::WorkloadClass;

/// The result cache is process-global; serialize the tests that install it.
fn cache_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("elsq-corrupt-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// A one-point spec, kept tiny — the matrix cost is flips × decode, so the
/// file should be representative, not large.
fn one_point_spec() -> ScenarioSpec {
    serde_json::from_str(
        r#"{
            "name": "matrix",
            "base": "fmc-hash",
            "axes": [ { "name": "rob", "values": ["48"] } ],
            "classes": ["fp"],
            "params": { "commits": 300, "seed": 7 }
        }"#,
    )
    .expect("inline scenario parses")
}

/// Populates a fresh store with the one demo point and returns its key.
fn populate(dir: &Path) -> PointKey {
    let spec = one_point_spec();
    let plan = spec.expand().expect("spec expands");
    let store = Arc::new(ResultStore::open(dir, false).unwrap());
    {
        let _guard = install_result_cache(Arc::clone(&store));
        run_plan(&plan, &spec.params);
    }
    assert_eq!(store.len(), 1);
    let p = &plan.points[0];
    PointKey::current(p.config, p.class, &spec.params)
}

/// Applies `check` to every single-bit-per-byte corruption of `path`:
/// for each byte position the bit `index % 8` is flipped, the check runs,
/// and the pristine bytes are restored. `check` returns the error the
/// corrupted file produced; the matrix asserts it names `expect_in_err`.
fn flip_matrix(path: &Path, expect_in_err: &str, mut check: impl FnMut() -> Option<String>) {
    let pristine = std::fs::read(path).expect("target file exists");
    assert!(!pristine.is_empty());
    for i in 0..pristine.len() {
        let mut tampered = pristine.clone();
        tampered[i] ^= 1 << (i % 8);
        std::fs::write(path, &tampered).unwrap();
        let outcome = check();
        std::fs::write(path, &pristine).unwrap();
        match outcome {
            None => panic!(
                "byte {i} of {} (0x{:02x} -> 0x{:02x}) was absorbed silently",
                path.display(),
                pristine[i],
                tampered[i],
            ),
            Some(err) => assert!(
                err.contains(expect_in_err),
                "byte {i} of {} (0x{:02x} -> 0x{:02x}): error does not name \
                 {expect_in_err:?}: {err}",
                path.display(),
                pristine[i],
                tampered[i],
            ),
        }
    }
}

#[test]
fn every_point_file_bit_flip_fails_the_lookup_loudly() {
    let _serial = cache_lock();
    let dir = tmp_dir("point");
    let key = populate(&dir);
    let point_path = dir.join(format!("point-{}.json", key.hex()));
    assert!(point_path.exists(), "{}", point_path.display());

    let store = ResultStore::open(&dir, true).unwrap();
    flip_matrix(&point_path, "point-", || store.lookup(&key).err());
    // Pristine again: the lookup answers.
    assert!(store.lookup(&key).unwrap().is_some());
    drop(store);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn every_manifest_bit_flip_fails_the_reopen_loudly() {
    let _serial = cache_lock();
    let dir = tmp_dir("manifest");
    populate(&dir);
    let manifest_path = dir.join("manifest.json");

    flip_matrix(&manifest_path, "manifest", || {
        ResultStore::open(&dir, true).err()
    });
    // Pristine again: the store opens and still holds the point.
    let store = ResultStore::open(&dir, true).unwrap();
    assert_eq!(store.len(), 1);
    drop(store);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn every_job_record_bit_flip_fails_the_journal_load_loudly() {
    let dir = tmp_dir("job");
    std::fs::create_dir_all(&dir).unwrap();
    let record = JobRecord {
        version: JOB_RECORD_VERSION,
        seq: 1,
        id: "night-1".into(),
        state: JobState::Done,
        spec: one_point_spec(),
        total: 2,
        completed: 2,
        hits: 1,
        misses: 1,
        failed: 1,
        events: vec![
            PointEvent {
                seq: 1,
                done: 1,
                label: "rob=48".into(),
                class: WorkloadClass::Fp,
                cached: true,
                site: None,
                error: None,
            },
            PointEvent {
                seq: 2,
                done: 2,
                label: "rob=64".into(),
                class: WorkloadClass::Fp,
                cached: false,
                site: Some("point.sim".into()),
                error: Some("injected chaos".into()),
            },
        ],
        error: None,
        checksum: 0,
    };
    write_record(&dir, &record, 0).unwrap();
    let path = record_path(&dir, "night-1");

    flip_matrix(&path, "job", || load_records(&dir).err());
    // Pristine again: the journal loads and the checksum verifies.
    let records = load_records(&dir).unwrap();
    assert_eq!(records.len(), 1);
    records[0].verify_checksum().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}
