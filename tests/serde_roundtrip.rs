//! Serde round-trip regression tests: every configuration and report type
//! must survive `value -> JSON text -> value` without loss, so that
//! machine-readable figure diffing (`elsq-lab run --format json`) and
//! config files can rely on the serialization layer.

use elsq_cpu::config::CpuConfig;
use elsq_cpu::result::SimResult;
use elsq_sim::driver::{run_suite, ExperimentParams};
use elsq_sim::experiments;
use elsq_stats::report::Report;
use elsq_workload::suite::WorkloadClass;

/// Every named `CpuConfig` constructor, as the smoke tests enumerate them.
fn named_configs() -> Vec<(&'static str, CpuConfig)> {
    vec![
        ("ooo64", CpuConfig::ooo64()),
        ("ooo64_svw", CpuConfig::ooo64_svw(10, true)),
        ("fmc_central_ideal", CpuConfig::fmc_central_ideal()),
        ("fmc_line", CpuConfig::fmc_line(true)),
        ("fmc_line_no_sqm", CpuConfig::fmc_line(false)),
        ("fmc_hash", CpuConfig::fmc_hash(true)),
        ("fmc_hash_no_sqm", CpuConfig::fmc_hash(false)),
        ("fmc_hash_rsac", CpuConfig::fmc_hash_rsac()),
        ("fmc_hash_svw", CpuConfig::fmc_hash_svw(8, false)),
    ]
}

#[test]
fn every_named_cpu_config_round_trips_through_json() {
    for (name, config) in named_configs() {
        let json = serde_json::to_string(&config).expect("serializes");
        let back: CpuConfig = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(back, config, "{name} changed across the JSON round trip");
        // The externally tagged enums must be visible in the encoding.
        assert!(json.contains("\"lsq\""), "{name}: {json}");
    }
}

#[test]
fn experiment_params_round_trip_through_json() {
    for params in [
        ExperimentParams::quick(),
        ExperimentParams::standard(),
        ExperimentParams::sweep(),
        ExperimentParams {
            commits: 123_456,
            seed: u64::MAX,
            sample: None,
        },
    ] {
        let json = serde_json::to_string(&params).unwrap();
        let back: ExperimentParams = serde_json::from_str(&json).unwrap();
        assert_eq!(back, params);
    }
}

#[test]
fn reports_round_trip_through_json_with_cell_values_intact() {
    let params = ExperimentParams {
        commits: 1_000,
        seed: 3,
        sample: None,
    };
    let tuning = experiments::find("tuning").expect("registered");
    let report = experiments::run_experiment(tuning, &params);
    let json = serde_json::to_string_pretty(&report).unwrap();
    let back: Report = serde_json::from_str(&json).unwrap();
    assert_eq!(back, report);
    // The raw per-cell values survive alongside the formatted strings.
    let cell = &back.tables[0].rows()[0][1];
    assert!(cell.value.is_some());
    assert_eq!(cell.text, elsq_stats::report::fmt_f(cell.value.unwrap()));
}

#[test]
fn sim_results_round_trip_through_json() {
    let params = ExperimentParams {
        commits: 800,
        seed: 5,
        sample: None,
    };
    let results = run_suite(CpuConfig::fmc_hash(true), WorkloadClass::Int, &params);
    let json = serde_json::to_string(&results).unwrap();
    let back: Vec<SimResult> = serde_json::from_str(&json).unwrap();
    assert_eq!(back, results);
}
