//! Determinism regression tests: the simulator must be a pure function of
//! (configuration, workload seed, commit budget). Any hidden global state —
//! an ambient RNG, iteration over a hash map, wall-clock coupling — shows up
//! here as a diff between two identically-seeded runs.

use elsq_cpu::config::CpuConfig;
use elsq_cpu::pipeline::Processor;
use elsq_cpu::result::SimResult;
use elsq_workload::suite::{suite, WorkloadClass};

const COMMITS: u64 = 3_000;
const SEED: u64 = 17;

/// Runs `cfg` over both workload suites and returns every result.
fn run_all(cfg: CpuConfig) -> Vec<SimResult> {
    [WorkloadClass::Fp, WorkloadClass::Int]
        .into_iter()
        .flat_map(|class| {
            suite(class, SEED)
                .into_iter()
                .map(|mut w| Processor::new(cfg).run(w.as_mut(), COMMITS))
        })
        .collect()
}

fn assert_identical(name: &str, cfg: CpuConfig) {
    let first = run_all(cfg);
    let second = run_all(cfg);
    assert_eq!(first.len(), second.len());
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(
            a, b,
            "{name}: workload {} diverged between identically-seeded runs",
            a.workload
        );
    }
}

#[test]
fn ooo64_is_deterministic() {
    assert_identical("ooo64", CpuConfig::ooo64());
}

#[test]
fn fmc_line_is_deterministic() {
    assert_identical("fmc_line", CpuConfig::fmc_line(true));
}

#[test]
fn fmc_hash_is_deterministic() {
    assert_identical("fmc_hash", CpuConfig::fmc_hash(true));
}

#[test]
fn svw_configs_are_deterministic() {
    assert_identical("ooo64_svw", CpuConfig::ooo64_svw(10, true));
    assert_identical("fmc_hash_svw", CpuConfig::fmc_hash_svw(10, false));
}

/// The parallel suite driver must be observably identical — results *and*
/// ordering — to the sequential reference path for both workload classes,
/// regardless of how many workers the work-stealing pool spins up.
#[test]
fn parallel_driver_matches_sequential_driver() {
    use elsq_sim::driver::{run_suite_sequential, run_suite_with_threads, ExperimentParams};

    let params = ExperimentParams {
        commits: COMMITS,
        seed: SEED,
        sample: None,
    };
    for cfg in [CpuConfig::ooo64(), CpuConfig::fmc_hash(true)] {
        for class in [WorkloadClass::Fp, WorkloadClass::Int] {
            let sequential = run_suite_sequential(cfg, class, &params);
            for workers in [2, 4, 6] {
                let parallel = run_suite_with_threads(cfg, class, &params, workers);
                assert_eq!(
                    parallel.len(),
                    sequential.len(),
                    "{class}/{workers} workers: result count diverged"
                );
                for (p, s) in parallel.iter().zip(&sequential) {
                    assert_eq!(
                        p.workload, s.workload,
                        "{class}/{workers} workers: ordering diverged"
                    );
                    assert_eq!(p, s, "{class}/{workers} workers: {} diverged", s.workload);
                }
            }
        }
    }
}
