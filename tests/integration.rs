//! Cross-crate integration tests: workload generators feeding the processor
//! models with every LSQ organization, checking the paper's qualitative
//! claims end to end.

use elsq_core::config::{ElsqConfig, ErtKind};
use elsq_core::disambig::DisambiguationModel;
use elsq_cpu::config::CpuConfig;
use elsq_cpu::pipeline::Processor;
use elsq_cpu::result::SimResult;
use elsq_isa::TraceSource;
use elsq_sim::driver::{run_suite, ExperimentParams};
use elsq_workload::pointer::PointerChaseInt;
use elsq_workload::streaming::StreamingFp;
use elsq_workload::suite::{fp_suite, int_suite, WorkloadClass};

const COMMITS: u64 = 8_000;

fn run_one(cfg: CpuConfig, workload: &mut dyn TraceSource) -> SimResult {
    Processor::new(cfg).run(workload, COMMITS)
}

#[test]
fn every_configuration_runs_every_workload() {
    let configs = [
        CpuConfig::ooo64(),
        CpuConfig::ooo64_svw(10, true),
        CpuConfig::fmc_central_ideal(),
        CpuConfig::fmc_line(true),
        CpuConfig::fmc_hash(true),
        CpuConfig::fmc_hash_rsac(),
        CpuConfig::fmc_hash_svw(10, false),
    ];
    for cfg in configs {
        for mut workload in fp_suite(11).into_iter().chain(int_suite(11)) {
            let r = Processor::new(cfg).run(workload.as_mut(), 2_000);
            assert_eq!(r.sim.committed, 2_000, "{} under-committed", r.workload);
            assert!(
                r.ipc() > 0.0 && r.ipc() <= 4.0,
                "{}: IPC {}",
                r.workload,
                r.ipc()
            );
            assert!(
                r.sim.ll_idle_cycles + r.sim.ll_active_cycles == r.sim.cycles,
                "{}: activity accounting is inconsistent",
                r.workload
            );
        }
    }
}

#[test]
fn simulation_is_deterministic() {
    let mut a = PointerChaseInt::mcf_like(3);
    let mut b = PointerChaseInt::mcf_like(3);
    let ra = run_one(CpuConfig::fmc_hash(true), &mut a);
    let rb = run_one(CpuConfig::fmc_hash(true), &mut b);
    assert_eq!(ra.sim, rb.sim);
    assert_eq!(ra.lsq, rb.lsq);
}

#[test]
fn large_window_speedup_is_bigger_for_fp_than_int() {
    let params = ExperimentParams {
        commits: COMMITS,
        seed: 5,
        sample: None,
    };
    let speedup = |class: WorkloadClass| -> f64 {
        let base = SimResult::mean_ipc(&run_suite(CpuConfig::ooo64(), class, &params));
        let fmc = SimResult::mean_ipc(&run_suite(CpuConfig::fmc_hash(true), class, &params));
        fmc / base
    };
    let fp = speedup(WorkloadClass::Fp);
    let int = speedup(WorkloadClass::Int);
    assert!(fp > 1.2, "SPEC FP speed-up {fp} should be substantial");
    assert!(
        fp > int,
        "SPEC FP speed-up {fp} should exceed SPEC INT speed-up {int} (Figure 7 shape)"
    );
}

#[test]
fn elsq_with_sqm_is_competitive_with_idealized_central_lsq() {
    let params = ExperimentParams {
        commits: COMMITS,
        seed: 5,
        sample: None,
    };
    for class in [WorkloadClass::Fp, WorkloadClass::Int] {
        let central =
            SimResult::mean_ipc(&run_suite(CpuConfig::fmc_central_ideal(), class, &params));
        let elsq = SimResult::mean_ipc(&run_suite(CpuConfig::fmc_hash(true), class, &params));
        assert!(
            elsq > 0.85 * central,
            "{class}: ELSQ+SQM IPC {elsq} should be within ~15% of the idealized central LSQ {central}"
        );
    }
}

#[test]
fn sqm_helps_int_more_than_it_hurts() {
    let params = ExperimentParams {
        commits: COMMITS,
        seed: 5,
        sample: None,
    };
    let with_sqm = SimResult::mean_ipc(&run_suite(
        CpuConfig::fmc_hash(true),
        WorkloadClass::Int,
        &params,
    ));
    let without_sqm = SimResult::mean_ipc(&run_suite(
        CpuConfig::fmc_hash(false),
        WorkloadClass::Int,
        &params,
    ));
    assert!(
        with_sqm >= 0.97 * without_sqm,
        "the Store Queue Mirror should not hurt SPEC INT: {with_sqm} vs {without_sqm}"
    );
}

#[test]
fn restricted_sac_is_cheaper_than_restricted_lac() {
    // Figure 9's qualitative claim: restricting store address calculation
    // costs less than restricting load address calculation, because far more
    // loads than stores have miss-dependent addresses.
    let params = ExperimentParams {
        commits: COMMITS,
        seed: 9,
        sample: None,
    };
    let ipc_of = |model: DisambiguationModel| {
        SimResult::mean_ipc(&run_suite(
            CpuConfig::fmc_elsq(ElsqConfig::default().with_disambiguation(model)),
            WorkloadClass::Int,
            &params,
        ))
    };
    let full = ipc_of(DisambiguationModel::Full);
    let rsac = ipc_of(DisambiguationModel::RestrictedSac);
    let rlac = ipc_of(DisambiguationModel::RestrictedLac);
    assert!(rsac <= full * 1.15 && rlac <= full * 1.15);
    assert!(
        rsac >= rlac * 0.95,
        "restricted SAC ({rsac}) should not be slower than restricted LAC ({rlac})"
    );
}

#[test]
fn line_and_hash_erts_behave_similarly_at_default_geometry() {
    let params = ExperimentParams {
        commits: COMMITS,
        seed: 5,
        sample: None,
    };
    for class in [WorkloadClass::Fp, WorkloadClass::Int] {
        let hash = SimResult::mean_ipc(&run_suite(CpuConfig::fmc_hash(true), class, &params));
        let line = SimResult::mean_ipc(&run_suite(CpuConfig::fmc_line(true), class, &params));
        let ratio = line / hash;
        assert!(
            (0.8..=1.2).contains(&ratio),
            "{class}: line/hash IPC ratio {ratio} diverges at the default 4-way 32KB L1"
        );
    }
}

#[test]
fn wider_ert_hash_reduces_false_positives_end_to_end() {
    let params = ExperimentParams {
        commits: COMMITS,
        seed: 5,
        sample: None,
    };
    let fp_of = |bits: u32| {
        let cfg = CpuConfig::fmc_elsq(
            ElsqConfig::default()
                .with_ert(ErtKind::Hash { bits })
                .with_sqm(false),
        );
        SimResult::mean_lsq_per_100m(&run_suite(cfg, WorkloadClass::Int, &params))
            .ert_false_positives
    };
    let narrow = fp_of(6);
    let wide = fp_of(14);
    assert!(
        wide <= narrow,
        "a 14-bit ERT ({wide}) should not produce more false positives than a 6-bit ERT ({narrow})"
    );
}

#[test]
fn table2_shape_holds_for_the_fmc() {
    // The two most-searched structures are the HL-SQ and the ERT, and the
    // low-locality queues see far fewer accesses (Section 6).
    let params = ExperimentParams {
        commits: COMMITS,
        seed: 5,
        sample: None,
    };
    let mean = SimResult::mean_lsq_per_100m(&run_suite(
        CpuConfig::fmc_hash(true),
        WorkloadClass::Fp,
        &params,
    ));
    assert!(mean.hl_sq_searches > 0);
    assert!(mean.ert_lookups > 0);
    assert!(
        mean.ll_lq_searches < mean.hl_sq_searches,
        "LL-LQ accesses ({}) should be far rarer than HL-SQ accesses ({})",
        mean.ll_lq_searches,
        mean.hl_sq_searches
    );
}

#[test]
fn streaming_fp_exposes_memory_level_parallelism() {
    // Sanity check of the substrate itself: the FMC hides most of the 400
    // cycle memory latency on independent-miss code.
    let mut w = StreamingFp::applu_like(2);
    let fmc = run_one(CpuConfig::fmc_hash(true), &mut w);
    let mut w = StreamingFp::applu_like(2);
    let ooo = run_one(CpuConfig::ooo64(), &mut w);
    assert!(
        fmc.ipc() / ooo.ipc() > 1.5,
        "{} vs {}",
        fmc.ipc(),
        ooo.ipc()
    );
}
