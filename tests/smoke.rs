//! Fast integration smoke test: every named `CpuConfig` variant must run
//! every workload class to completion without panicking. This is the cheap
//! tier-1 gate that catches config/pipeline wiring regressions before the
//! slower qualitative integration tests run.

use elsq_core::config::{ElsqConfig, ErtKind};
use elsq_core::disambig::DisambiguationModel;
use elsq_cpu::config::CpuConfig;
use elsq_sim::driver::{run_suite, ExperimentParams};
use elsq_workload::suite::WorkloadClass;

/// Every named configuration constructor, plus a couple of explicit ELSQ
/// variants that exercise non-default knobs.
fn all_configs() -> Vec<(&'static str, CpuConfig)> {
    vec![
        ("ooo64", CpuConfig::ooo64()),
        ("ooo64_svw", CpuConfig::ooo64_svw(10, true)),
        ("fmc_central_ideal", CpuConfig::fmc_central_ideal()),
        ("fmc_line", CpuConfig::fmc_line(true)),
        ("fmc_line_no_sqm", CpuConfig::fmc_line(false)),
        ("fmc_hash", CpuConfig::fmc_hash(true)),
        ("fmc_hash_no_sqm", CpuConfig::fmc_hash(false)),
        ("fmc_hash_rsac", CpuConfig::fmc_hash_rsac()),
        ("fmc_hash_svw", CpuConfig::fmc_hash_svw(10, true)),
        (
            "fmc_narrow_ert_rlac",
            CpuConfig::fmc_elsq(
                ElsqConfig::default()
                    .with_ert(ErtKind::Hash { bits: 6 })
                    .with_disambiguation(DisambiguationModel::RestrictedLac),
            ),
        ),
    ]
}

#[test]
fn every_config_runs_every_workload_class() {
    // Quick parameters with a further-reduced commit budget: the point is
    // "does not panic and commits what it was asked to", not model quality.
    let params = ExperimentParams {
        commits: 1_000,
        ..ExperimentParams::quick()
    };
    for (name, cfg) in all_configs() {
        for class in [WorkloadClass::Fp, WorkloadClass::Int] {
            let results = run_suite(cfg, class, &params);
            assert_eq!(results.len(), 6, "{name}/{class}: suite size changed");
            for r in &results {
                assert_eq!(
                    r.sim.committed, params.commits,
                    "{name}/{class}/{}: under-committed",
                    r.workload
                );
                assert!(
                    r.ipc() > 0.0 && r.ipc() <= 4.0,
                    "{name}/{class}/{}: IPC {} outside (0, 4]",
                    r.workload,
                    r.ipc()
                );
            }
        }
    }
}
