//! Acceptance pins for the scenario-sweep cache (ISSUE 5):
//!
//! * a sweep interrupted after k of n points resumes computing only n−k,
//! * a repeated identical sweep performs zero simulations,
//! * and in both cases the merged report is byte-identical to an uncached
//!   run.
//!
//! The tests drive the driver-level API directly (`install_result_cache` +
//! `run_plan`); the `elsq-lab sweep` CLI pins the same properties at the
//! command level in `crates/bench/src/cli.rs`, and CI repeats them end to
//! end on a real process boundary.

use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use elsq_cpu::result::SimResult;
use elsq_sim::driver::install_result_cache;
use elsq_sim::scenario::{run_plan, ScenarioSpec, SweepPlan};
use elsq_sim::store::ResultStore;
use elsq_sim::ExperimentParams;
use elsq_stats::report::Report;

/// The result cache is process-global; libtest runs tests in this binary
/// concurrently, so every test serializes its install window.
fn cache_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("elsq-sweep-cache-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// A small 2×2(×class) grid, expanded from a declarative spec exactly like
/// `elsq-lab sweep --axis rob=48,64 --axis sqm=on,off` would build it.
fn demo_spec() -> ScenarioSpec {
    let spec_json = r#"{
        "name": "pin",
        "base": "fmc-hash",
        "axes": [
            { "name": "rob", "values": ["48", "64"] },
            { "name": "sqm", "values": ["on", "off"] }
        ],
        "classes": ["fp"],
        "params": { "commits": 600, "seed": 7 }
    }"#;
    serde_json::from_str(spec_json).expect("inline scenario parses")
}

fn plan_and_params() -> (SweepPlan, ExperimentParams) {
    let spec = demo_spec();
    let plan = spec.expand().expect("demo spec expands");
    (plan, spec.params)
}

/// Runs the plan and returns per-point mean IPCs (a compact, fully
/// value-bearing digest of the results).
fn run_ipcs(plan: &SweepPlan, params: &ExperimentParams) -> Vec<f64> {
    run_plan(plan, params)
        .iter()
        .map(|(_, suite)| SimResult::mean_ipc(suite))
        .collect()
}

#[test]
fn repeated_identical_sweep_performs_zero_simulations() {
    let _serial = cache_lock();
    let (plan, params) = plan_and_params();
    let dir = tmp_dir("repeat");

    let uncached = run_ipcs(&plan, &params);

    let first_store = Arc::new(ResultStore::open(&dir, false).unwrap());
    let first = {
        let _guard = install_result_cache(Arc::clone(&first_store));
        run_ipcs(&plan, &params)
    };
    assert_eq!(first_store.hits(), 0);
    assert_eq!(
        first_store.misses(),
        plan.len() as u64,
        "fresh cache misses all"
    );
    // Release the store (and its advisory writer lock) before reopening.
    drop(first_store);

    // Second identical sweep: zero simulations — every point is a hit.
    let second_store = Arc::new(ResultStore::open(&dir, true).unwrap());
    let second = {
        let _guard = install_result_cache(Arc::clone(&second_store));
        run_ipcs(&plan, &params)
    };
    assert_eq!(
        second_store.misses(),
        0,
        "a repeated sweep must not simulate"
    );
    assert_eq!(second_store.hits(), plan.len() as u64);

    // Cached, resumed and uncached sweeps agree bit-for-bit.
    assert_eq!(first, uncached);
    assert_eq!(second, uncached);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn interrupted_sweep_resumes_computing_only_the_missing_points() {
    let _serial = cache_lock();
    let (plan, params) = plan_and_params();
    let n = plan.len();
    let k = 2;
    assert!(k < n);
    let dir = tmp_dir("interrupt");

    // "Interrupt" after k points: run a truncated plan into the cache.
    let mut partial = SweepPlan::new(plan.name.clone());
    partial.axes = plan.axes.clone();
    partial.points = plan.points[..k].to_vec();
    let store = Arc::new(ResultStore::open(&dir, false).unwrap());
    {
        let _guard = install_result_cache(Arc::clone(&store));
        run_plan(&partial, &params);
    }
    assert_eq!(
        store.len(),
        k,
        "k points were cached before the interruption"
    );
    // Release the store (and its advisory writer lock) before reopening.
    drop(store);

    // Resume the full sweep: exactly n−k points simulate.
    let resumed_store = Arc::new(ResultStore::open(&dir, true).unwrap());
    let resumed = {
        let _guard = install_result_cache(Arc::clone(&resumed_store));
        run_ipcs(&plan, &params)
    };
    assert_eq!(resumed_store.hits(), k as u64);
    assert_eq!(
        resumed_store.misses(),
        (n - k) as u64,
        "resume must only compute the missing points"
    );
    assert_eq!(resumed_store.len(), n);

    // The merged (cached + fresh) results equal an uncached run.
    assert_eq!(resumed, run_ipcs(&plan, &params));
    std::fs::remove_dir_all(&dir).ok();
}

/// The refactored figure experiments run through the same cache: a cached
/// re-run of a registered experiment produces a byte-identical report and
/// performs zero simulations.
#[test]
fn cached_experiment_reports_are_byte_identical() {
    let _serial = cache_lock();
    let params = ExperimentParams {
        commits: 600,
        seed: 7,
        sample: None,
    };
    let experiment = elsq_sim::find("fig7").expect("fig7 is registered");
    let dir = tmp_dir("experiment");

    let fresh: Report = experiment.run(&params);
    let store = Arc::new(ResultStore::open(&dir, false).unwrap());
    let (populated, cached) = {
        let _guard = install_result_cache(Arc::clone(&store));
        let populated = experiment.run(&params);
        (populated, experiment.run(&params))
    };
    assert_eq!(store.misses(), experiment.plan().len() as u64);
    assert_eq!(
        serde_json::to_string(&populated).unwrap(),
        serde_json::to_string(&fresh).unwrap()
    );
    assert_eq!(
        serde_json::to_string(&cached).unwrap(),
        serde_json::to_string(&fresh).unwrap()
    );
    std::fs::remove_dir_all(&dir).ok();
}
