//! Golden `.etrc` fixture: pins the on-disk trace format bit-for-bit.
//!
//! `tests/fixtures/golden.etrc` was produced by the `regenerate_fixture`
//! test below (run with `cargo test --test golden_trace -- --ignored`) and
//! is committed. Two pins:
//!
//! * **decode stability** — the committed bytes must keep decoding to the
//!   known stream: old traces stay readable forever within a format
//!   version;
//! * **encode stability** — the current encoder must reproduce the
//!   committed bytes exactly. An *intentional* encoder change (e.g. a
//!   better match finder) may update the fixture via the regeneration
//!   test, but must bump `FORMAT_VERSION` if old readers would misread the
//!   new bytes — see the versioning rules in `docs/TRACE_FORMAT.md`.

use elsq::elsq_isa::etrc::{read_trace, write_trace, TraceMeta, SUITE_INT};
use elsq::elsq_isa::{ArchReg, DynInst, InstBuilder, OpClass, WrongPathSpec};

fn fixture_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden.etrc")
}

/// The golden stream: every record shape the format can express — all nine
/// op classes, explicit latencies, fp and int registers, dense and sparse
/// address deltas, all branch outcome combinations and a wrong-path record.
fn golden_stream() -> Vec<DynInst> {
    let mut insts = Vec::new();
    let mut pc = 0x0040_0000u64;
    let step = |delta: u64, pc: &mut u64| {
        let at = *pc;
        *pc += delta;
        at
    };
    for round in 0..8u64 {
        insts.push(
            InstBuilder::load(step(4, &mut pc), 0x1000_0000 + round * 8, 8)
                .dst(ArchReg::int(1))
                .src(ArchReg::int(2))
                .build(),
        );
        insts.push(
            InstBuilder::load(step(4, &mut pc), 0x7fff_0000_0000 + round * 4096, 4)
                .dst(ArchReg::int(3))
                .src(ArchReg::int(1))
                .build(),
        );
        insts.push(
            InstBuilder::store(step(4, &mut pc), 0x1000_0000 + round * 8, 8)
                .src(ArchReg::int(2))
                .src(ArchReg::int(1))
                .build(),
        );
        insts.push(
            InstBuilder::store(step(4, &mut pc), 0x20 + round, 1)
                .src(ArchReg::int(4))
                .build(),
        );
        insts.push(
            InstBuilder::branch(
                step(4, &mut pc),
                round % 2 == 0,
                round % 4 == 1,
                0x0040_0000,
            )
            .src(ArchReg::int(5))
            .build(),
        );
        insts.push(
            InstBuilder::alu(step(4, &mut pc), OpClass::IntAlu)
                .dst(ArchReg::int(6))
                .src(ArchReg::int(6))
                .src(ArchReg::int(7))
                .build(),
        );
        insts.push(
            InstBuilder::alu(step(4, &mut pc), OpClass::IntMul)
                .dst(ArchReg::int(8))
                .src(ArchReg::int(9))
                .latency(12)
                .build(),
        );
        insts.push(
            InstBuilder::alu(step(4, &mut pc), OpClass::FpAlu)
                .dst(ArchReg::fp(1))
                .src(ArchReg::fp(2))
                .build(),
        );
        insts.push(
            InstBuilder::alu(step(4, &mut pc), OpClass::FpMul)
                .dst(ArchReg::fp(3))
                .src(ArchReg::fp(1))
                .src(ArchReg::fp(31))
                .build(),
        );
        insts.push(
            InstBuilder::alu(step(4, &mut pc), OpClass::FpDiv)
                .dst(ArchReg::fp(4))
                .src(ArchReg::fp(3))
                .latency(30)
                .build(),
        );
        insts.push(InstBuilder::alu(step(4, &mut pc), OpClass::Nop).build());
        insts.push(
            InstBuilder::alu(step(0x1000, &mut pc), OpClass::IntAlu)
                .dst(ArchReg::int(10))
                .src(ArchReg::int(0))
                .wrong_path(true)
                .build(),
        );
    }
    insts
}

fn golden_meta() -> TraceMeta {
    let mut meta = TraceMeta::named("golden-kernel", 424242);
    meta.suite_tag = SUITE_INT;
    meta.suite_index = Some(5);
    meta.wrong_path = Some(WrongPathSpec {
        seed: 424242,
        region_base: 0x1000_0000,
        region_size: 1 << 20,
        load_rate: 0.25,
    });
    meta.block_target = 256; // several blocks even for this small stream
    meta
}

#[test]
fn golden_fixture_decodes_to_the_known_stream() {
    let bytes = std::fs::read(fixture_path())
        .expect("missing tests/fixtures/golden.etrc; regenerate with `cargo test --test golden_trace -- --ignored`");
    let (meta, insts) = read_trace(&bytes).expect("golden fixture no longer decodes");
    assert_eq!(meta, golden_meta(), "golden header drifted");
    assert_eq!(insts, golden_stream(), "golden stream drifted");
}

#[test]
fn encoder_reproduces_the_golden_bytes() {
    let bytes = std::fs::read(fixture_path()).expect("missing golden fixture");
    let encoded = write_trace(&golden_stream(), &golden_meta()).unwrap();
    assert_eq!(
        encoded, bytes,
        "encoder output drifted from the committed fixture; if the change is \
         intentional, regenerate the fixture and review the versioning rules \
         in docs/TRACE_FORMAT.md"
    );
}

/// Rewrites the fixture from the current encoder. Ignored by default; run
/// explicitly after an intentional format change:
/// `cargo test --test golden_trace -- --ignored`
#[test]
#[ignore = "regenerates tests/fixtures/golden.etrc from the current encoder"]
fn regenerate_fixture() {
    let path = fixture_path();
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    let bytes = write_trace(&golden_stream(), &golden_meta()).unwrap();
    std::fs::write(&path, &bytes).unwrap();
    println!("wrote {} ({} bytes)", path.display(), bytes.len());
}
