//! Golden-output guard for the hot-path optimization work.
//!
//! Runs two quick experiments at a fixed seed and asserts a stable FNV-1a
//! hash of the serialized JSON [`Report`]. The expected hashes were recorded
//! on pre-optimization `main` (PR 2), so any change to simulation semantics
//! — a different forwarding pick, a shifted counter, a reordered search —
//! changes a cell value and breaks the hash. The data-structure work in the
//! core crates (seq-indexed slab queues, address-bucketed search indices,
//! unknown-address sets) must keep these bit-exact.
//!
//! `fig7` exercises the central LSQ plus every ELSQ variant (line/hash ERT,
//! with and without the SQM) over both workload suites; `table2` pins the
//! access *counters*, which are the most sensitive observers of the search
//! paths (one extra or missing queue search changes a column).
//!
//! If a future PR changes simulation semantics *intentionally*, re-record
//! the constants with:
//!
//! ```text
//! cargo test --test golden_reports -- --nocapture
//! ```
//!
//! (each test prints the computed hash) and explain the change in the PR.

use elsq_sim::experiments::find;
use elsq_stats::report::ExperimentParams;

/// 64-bit FNV-1a over the serialized report.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Runs experiment `id` at the pinned quick parameters and hashes its JSON
/// report (wall time cleared first — it is the one non-deterministic field).
fn golden_hash(id: &str) -> u64 {
    let params = ExperimentParams {
        commits: 2_000,
        seed: 7,
        sample: None,
    };
    let experiment = find(id).expect("experiment is registered");
    let report = experiment.run(&params).without_wall_time();
    let json = serde_json::to_string(&report).expect("reports always serialize");
    let hash = fnv1a64(json.as_bytes());
    println!("golden hash for {id}: {hash:#018x}");
    hash
}

#[test]
fn fig7_quick_report_is_bit_stable() {
    assert_eq!(
        golden_hash("fig7"),
        0x89d552f95d395891,
        "fig7 report changed: the optimizations must not alter simulation \
         semantics (see tests/golden_reports.rs for how to re-record)"
    );
}

#[test]
fn table2_quick_report_is_bit_stable() {
    assert_eq!(
        golden_hash("table2"),
        0xd71ba16e0c2d581c,
        "table2 access counters changed: a queue search was added, dropped \
         or reordered (see tests/golden_reports.rs for how to re-record)"
    );
}
