//! Regenerates the sensitivity-sweep table in `docs/ENERGY_MODEL.md`: the
//! Section 6 energy comparison under perturbed model coefficients.
//!
//! The energy model has exactly three free coefficients (SRAM nJ/B/port,
//! the CAM search factor, cache nJ/B/port); this sweep scales each in turn
//! and reports the FMC-Hash : OoO-64 LSQ-energy ratio for both suites —
//! the paper-level conclusion the model exists to support. Run with:
//!
//! ```text
//! cargo run --release -p elsq --example energy_sensitivity
//! ```

use elsq_cpu::config::CpuConfig;
use elsq_cpu::result::SimResult;
use elsq_sim::driver::{run_suite, ExperimentParams};
use elsq_stats::energy::{EnergyModel, LsqStructureSpecs, ERT_2KB_READ_NJ, L1_32KB_READ_NJ};
use elsq_workload::suite::WorkloadClass;

/// The calibration point coefficients (see `EnergyModel::default`).
fn base_coefficients() -> (f64, f64, f64) {
    (
        ERT_2KB_READ_NJ / (2048.0 * 2.0),
        6.0,
        L1_32KB_READ_NJ / (32768.0 * 2.0),
    )
}

fn main() {
    let params = ExperimentParams {
        commits: 20_000,
        seed: 7,
        sample: None,
    };
    let specs = LsqStructureSpecs::default();

    // Mean per-100M access counters, once per (config, class).
    let mut counters = Vec::new();
    for (name, cfg) in [
        ("OoO-64", CpuConfig::ooo64()),
        ("FMC-Hash", CpuConfig::fmc_hash(true)),
    ] {
        for class in [WorkloadClass::Fp, WorkloadClass::Int] {
            let mean = SimResult::mean_lsq_per_100m(&run_suite(cfg, class, &params));
            counters.push((name, class, mean));
        }
    }

    let (sram, cam, cache) = base_coefficients();
    println!("FMC-Hash : OoO-64 LSQ dynamic-energy ratio under coefficient scaling");
    println!(
        "(commits={}, seed={}; x1.0 is the calibrated model)",
        params.commits, params.seed
    );
    println!();
    println!("| coefficient | scale | SPEC FP ratio | SPEC INT ratio |");
    println!("|---|---:|---:|---:|");
    for (label, scales) in [
        ("SRAM nJ/B/port", [0.5, 1.0, 2.0]),
        ("CAM search factor", [0.5, 1.0, 2.0]),
        ("cache nJ/B/port", [0.5, 1.0, 2.0]),
    ] {
        for scale in scales {
            let model = match label {
                "SRAM nJ/B/port" => EnergyModel::with_coefficients(sram * scale, cam, cache),
                "CAM search factor" => EnergyModel::with_coefficients(sram, cam * scale, cache),
                _ => EnergyModel::with_coefficients(sram, cam, cache * scale),
            };
            let ratio = |class: WorkloadClass| {
                let energy = |config: &str| {
                    let (_, _, c) = counters
                        .iter()
                        .find(|(n, cl, _)| *n == config && *cl == class)
                        .expect("counters collected above");
                    model.lsq_energy_breakdown(c, &specs).total_nj
                };
                energy("FMC-Hash") / energy("OoO-64")
            };
            println!(
                "| {label} | x{scale:.1} | {:.2} | {:.2} |",
                ratio(WorkloadClass::Fp),
                ratio(WorkloadClass::Int)
            );
        }
    }
    println!();
    let model = EnergyModel::default();
    let ert = model.read_energy_nj(elsq_stats::energy::StructureSpec::sram(2048, 2));
    let l1 = model.read_energy_nj(elsq_stats::energy::StructureSpec::cache(32 * 1024, 2));
    println!(
        "calibration check: ERT read {ert:.5} nJ, L1 read {l1:.4} nJ, ratio {:.1}%",
        100.0 * ert / l1
    );
}
