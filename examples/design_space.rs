//! Design-space exploration: compare every LSQ organization the paper
//! discusses — conventional, idealized central, ELSQ variants, restricted
//! disambiguation and SVW re-execution — on one FP and one INT workload.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p elsq --example design_space [commits]
//! ```

use elsq_cpu::config::CpuConfig;
use elsq_cpu::pipeline::Processor;
use elsq_isa::TraceSource;
use elsq_stats::report::{fmt_f, fmt_millions, Table};
use elsq_workload::pointer::PointerChaseInt;
use elsq_workload::streaming::StreamingFp;

fn configurations() -> Vec<(&'static str, CpuConfig)> {
    vec![
        ("OoO-64 (conventional LSQ)", CpuConfig::ooo64()),
        ("OoO-64 + SVW re-execution", CpuConfig::ooo64_svw(10, true)),
        (
            "FMC + idealized central LSQ",
            CpuConfig::fmc_central_ideal(),
        ),
        ("FMC + ELSQ line ERT", CpuConfig::fmc_line(false)),
        ("FMC + ELSQ line ERT + SQM", CpuConfig::fmc_line(true)),
        ("FMC + ELSQ hash ERT", CpuConfig::fmc_hash(false)),
        ("FMC + ELSQ hash ERT + SQM", CpuConfig::fmc_hash(true)),
        ("FMC + ELSQ restricted SAC", CpuConfig::fmc_hash_rsac()),
        ("FMC + ELSQ + SVW", CpuConfig::fmc_hash_svw(10, true)),
    ]
}

fn explore(name: &str, make: impl Fn() -> Box<dyn TraceSource>, commits: u64) {
    let mut table = Table::new(
        format!("{name}: LSQ design space ({commits} committed instructions)"),
        &[
            "configuration",
            "IPC",
            "speed-up",
            "ERT/100M",
            "roundtrips/100M",
            "forwards/100M",
        ],
    );
    let mut baseline_ipc = None;
    for (label, cfg) in configurations() {
        let mut workload = make();
        let r = Processor::new(cfg).run(workload.as_mut(), commits);
        let per100m = r.lsq_per_100m();
        let base = *baseline_ipc.get_or_insert(r.ipc());
        table.row_owned(vec![
            label.to_owned(),
            fmt_f(r.ipc()),
            fmt_f(r.ipc() / base),
            fmt_millions(per100m.ert_lookups),
            fmt_millions(per100m.roundtrips),
            fmt_millions(per100m.local_forwards + per100m.global_forwards),
        ]);
    }
    println!("{table}");
}

fn main() {
    let commits: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(40_000);
    explore(
        "SPEC-FP-like (streaming)",
        || Box::new(StreamingFp::swim_like(7)),
        commits,
    );
    explore(
        "SPEC-INT-like (pointer chasing)",
        || Box::new(PointerChaseInt::mcf_like(7)),
        commits,
    );
}
