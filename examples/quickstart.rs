//! Quickstart: drive the Epoch-based Load/Store Queue directly, then run a
//! small end-to-end simulation comparing it against a conventional 64-entry
//! ROB processor.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p elsq --example quickstart
//! ```

use elsq_core::config::ElsqConfig;
use elsq_core::elsq::Elsq;
use elsq_core::queue::MemOpKind;
use elsq_cpu::config::CpuConfig;
use elsq_cpu::pipeline::Processor;
use elsq_isa::MemAccess;
use elsq_workload::streaming::StreamingFp;

fn main() {
    // ------------------------------------------------------------------
    // 1. The ELSQ as a library: allocate, migrate, forward.
    // ------------------------------------------------------------------
    let mut lsq = Elsq::new(ElsqConfig::default());

    // A store enters the high-locality LSQ at decode and resolves its address.
    lsq.allocate_hl(MemOpKind::Store, 1)
        .expect("HL-SQ has room");
    lsq.hl_store_address_ready(1, MemAccess::new(0x1000, 8), 10);

    // An L2 miss opens an epoch and the store migrates to the low-locality
    // LSQ (one epoch per FMC Memory Engine).
    let _bank = lsq.open_epoch(1).expect("a free epoch bank");
    lsq.migrate_to_ll(MemOpKind::Store, 1, None)
        .expect("migration succeeds");

    // A younger high-locality load to the same address forwards from the
    // migrated store through the Epoch Resolution Table + Store Queue Mirror,
    // without a network round-trip.
    lsq.allocate_hl(MemOpKind::Load, 2).expect("HL-LQ has room");
    let outcome = lsq.issue_hl_load(2, MemAccess::new(0x1000, 8), 25);
    println!(
        "forwarded from store {:?} (source {:?}, +{} cycles)",
        outcome.forwarded_from, outcome.forward_source, outcome.extra_latency
    );
    println!("ELSQ counters after the exchange: {:#?}\n", lsq.counters());

    // ------------------------------------------------------------------
    // 2. End-to-end: OoO-64 vs FMC + ELSQ on a streaming FP workload.
    // ------------------------------------------------------------------
    let commits = 40_000;
    let mut baseline_workload = StreamingFp::swim_like(7);
    let baseline = Processor::new(CpuConfig::ooo64()).run(&mut baseline_workload, commits);
    let mut elsq_workload = StreamingFp::swim_like(7);
    let elsq = Processor::new(CpuConfig::fmc_hash(true)).run(&mut elsq_workload, commits);

    println!("OoO-64 (conventional LSQ) : IPC {:.3}", baseline.ipc());
    println!("FMC + ELSQ (hash ERT+SQM) : IPC {:.3}", elsq.ipc());
    println!(
        "speed-up                  : {:.2}x",
        elsq.ipc() / baseline.ipc()
    );
    println!(
        "epochs allocated {} | ERT lookups {} | local forwards {} | remote forwards {}",
        elsq.sim.epochs_allocated,
        elsq.lsq.ert_lookups,
        elsq.lsq.local_forwards,
        elsq.lsq.global_forwards
    );
}
