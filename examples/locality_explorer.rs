//! Locality explorer: measure the decode→address-calculation distance
//! distribution (the paper's Figure 1) for any of the bundled workloads and
//! see how much of the window is high locality.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p elsq --example locality_explorer [workload] [commits]
//! ```
//!
//! where `workload` is one of `swim`, `mcf`, `equake`, `vpr` (default `mcf`).

use elsq_cpu::config::CpuConfig;
use elsq_cpu::pipeline::Processor;
use elsq_isa::TraceSource;
use elsq_workload::hashtab::HashTableInt;
use elsq_workload::pointer::PointerChaseInt;
use elsq_workload::stencil::IrregularFp;
use elsq_workload::streaming::StreamingFp;

fn workload_by_name(name: &str) -> Box<dyn TraceSource> {
    match name {
        "swim" => Box::new(StreamingFp::swim_like(7)),
        "equake" => Box::new(IrregularFp::equake_like(7)),
        "vpr" => Box::new(HashTableInt::vpr_like(7)),
        _ => Box::new(PointerChaseInt::mcf_like(7)),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let name = args.get(1).map(String::as_str).unwrap_or("mcf").to_owned();
    let commits: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(50_000);

    let mut workload = workload_by_name(&name);
    println!(
        "workload: {} ({commits} committed instructions)",
        workload.name()
    );

    let result = Processor::new(CpuConfig::fmc_hash(true)).run(workload.as_mut(), commits);

    for (kind, hist) in [
        ("loads", &result.load_addr_hist),
        ("stores", &result.store_addr_hist),
    ] {
        println!("\n{kind}: {} samples", hist.total());
        println!(
            "  within 30 cycles of decode : {:5.1}%",
            100.0 * hist.first_bin_fraction()
        );
        println!(
            "  95% within                 : {:>5} cycles",
            hist.percentile(0.95)
        );
        println!(
            "  99% within                 : {:>5} cycles",
            hist.percentile(0.99)
        );
        // A coarse text histogram of the first 12 bins.
        let max = hist.bins().iter().copied().max().unwrap_or(1).max(1);
        for (i, count) in hist.bins().iter().take(12).enumerate() {
            let bar = "#".repeat((count * 40 / max) as usize);
            println!("  {:>4}-{:<4} {:>8} {bar}", i * 30, (i + 1) * 30, count);
        }
    }

    println!(
        "\nMemory Processor busy {:.1}% of cycles, {} epochs allocated, IPC {:.3}",
        100.0 * (1.0 - result.sim.ll_idle_fraction()),
        result.sim.epochs_allocated,
        result.ipc()
    );
}
