//! The unified Experiment API: discover experiments through the registry,
//! run one with custom parameters, and consume its structured report — the
//! same pipeline the `elsq-lab` CLI drives.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p elsq --example experiment_api [experiment-id]
//! ```

use elsq_sim::driver::ExperimentParams;
use elsq_sim::experiments::{find, registry, run_experiment};

fn main() {
    // Every paper artifact is a registered experiment with a stable id.
    println!("registered experiments:");
    for e in registry() {
        println!("  {:<7} {}", e.id(), e.title());
    }

    let id = std::env::args().nth(1).unwrap_or_else(|| "tuning".into());
    let experiment = find(&id).unwrap_or_else(|| {
        eprintln!("unknown experiment `{id}`");
        std::process::exit(2);
    });

    // Reports carry the parameters, every table, and the wall time; table
    // cells keep the raw f64 next to the formatted string.
    let params = ExperimentParams::quick();
    let report = run_experiment(experiment, &params);
    println!("\n{report}");
    println!("completed in {:.1} ms", report.wall_time_ms);

    let first_numeric = report
        .tables
        .iter()
        .flat_map(|t| t.rows().iter().flatten())
        .find_map(|cell| cell.value.map(|v| (cell.text.clone(), v)));
    if let Some((text, value)) = first_numeric {
        println!("first numeric cell: text {text:?} carries raw value {value}");
    }
}
