//! Umbrella crate for the ELSQ reproduction — *"A Two-Level Load/Store
//! Queue Based on Execution Locality"* (ISCA 2008).
//!
//! This crate re-exports every subsystem of the simulator under one roof so
//! downstream users (and the cross-crate integration tests in `tests/`) can
//! depend on a single crate:
//!
//! | Re-export | Contents |
//! |---|---|
//! | [`elsq_isa`] | synthetic ISA: dynamic instructions, registers, traces |
//! | [`elsq_core`] | the two-level LSQ: HL/LL queues, epochs, ERT, SQM, SSBF/SVW |
//! | [`elsq_mem`] | cache hierarchy with line locking, port arbitration |
//! | [`elsq_stats`] | access counters, energy model, table rendering |
//! | [`elsq_workload`] | synthetic SPEC-FP/INT-like workload generators |
//! | [`elsq_cpu`] | OoO-64 and FMC cycle-accounting processor models |
//! | [`elsq_sim`] | figure-by-figure experiment harness and suite driver |
//!
//! # Example
//!
//! ```
//! use elsq::elsq_cpu::config::CpuConfig;
//! use elsq::elsq_cpu::pipeline::Processor;
//! use elsq::elsq_workload::streaming::StreamingFp;
//!
//! let mut workload = StreamingFp::swim_like(1);
//! let result = Processor::new(CpuConfig::ooo64()).run(&mut workload, 5_000);
//! assert!(result.ipc() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use elsq_core;
pub use elsq_cpu;
pub use elsq_isa;
pub use elsq_mem;
pub use elsq_sim;
pub use elsq_stats;
pub use elsq_workload;
